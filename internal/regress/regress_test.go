package regress

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestAppendLoadRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "ledger.jsonl")
	r1 := Run{ID: "a", Source: "test", Metrics: map[string]float64{"x": 1, "y": 2.5}}
	r2 := Run{ID: "b", Metrics: map[string]float64{"x": 3}}
	if err := Append(path, r1); err != nil {
		t.Fatal(err)
	}
	if err := Append(path, r2); err != nil {
		t.Fatal(err)
	}
	runs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("loaded %d runs, want 2", len(runs))
	}
	if runs[0].ID != "a" || runs[0].Metrics["y"] != 2.5 || runs[1].Metrics["x"] != 3 {
		t.Errorf("roundtrip mangled runs: %+v", runs)
	}
	if runs[0].Time.IsZero() {
		t.Error("Append did not stamp a time")
	}
	if err := Append(path, Run{Metrics: map[string]float64{"x": 1}}); err == nil {
		t.Error("Append accepted an empty run ID")
	}
}

func TestLoadMissingAndMalformed(t *testing.T) {
	runs, err := Load(filepath.Join(t.TempDir(), "absent.jsonl"))
	if err != nil || runs != nil {
		t.Errorf("missing ledger should be empty, got %v, %v", runs, err)
	}
	_, err = Read(strings.NewReader("{\"id\":\"ok\",\"metrics\":{}}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("malformed line should fail with its line number, got %v", err)
	}
}

func TestFind(t *testing.T) {
	runs := []Run{
		{ID: "a", Metrics: map[string]float64{"v": 1}},
		{ID: "b", Metrics: map[string]float64{"v": 2}},
		{ID: "a", Metrics: map[string]float64{"v": 3}}, // re-recorded: latest wins
	}
	if r, err := Find(runs, "a"); err != nil || r.Metrics["v"] != 3 {
		t.Errorf("Find(a) = %v, %v; want latest entry v=3", r.Metrics, err)
	}
	if r, err := Find(runs, "HEAD"); err != nil || r.Metrics["v"] != 3 {
		t.Errorf("Find(HEAD) = %v, %v", r.Metrics, err)
	}
	if r, err := Find(runs, "HEAD~2"); err != nil || r.Metrics["v"] != 1 {
		t.Errorf("Find(HEAD~2) = %v, %v", r.Metrics, err)
	}
	if _, err := Find(runs, "HEAD~3"); err == nil {
		t.Error("Find(HEAD~3) beyond ledger should fail")
	}
	if _, err := Find(runs, "nope"); err == nil {
		t.Error("Find(nope) should fail")
	}
}

func TestBaselineMedian(t *testing.T) {
	runs := []Run{
		{ID: "1", Metrics: map[string]float64{"ns": 100, "rare": 7}},
		{ID: "2", Metrics: map[string]float64{"ns": 300}},
		{ID: "3", Metrics: map[string]float64{"ns": 110}},
		{ID: "4", Metrics: map[string]float64{"ns": 120}},
	}
	b, err := Baseline(runs, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Even count: median of {100,110,120,300} = 115 — the 300 outlier must
	// not drag the baseline the way a mean would.
	if got := b.Metrics["ns"]; got != 115 {
		t.Errorf("median ns = %v, want 115", got)
	}
	if _, ok := b.Metrics["rare"]; ok {
		t.Error("metric with 1 sample survived minN=2")
	}
	if _, err := Baseline(nil, 1); err == nil {
		t.Error("Baseline over zero runs should fail")
	}
}

func TestCompareAndSignificance(t *testing.T) {
	old := Run{ID: "old", Metrics: map[string]float64{"ns": 100, "allocs": 0, "gone": 5, "same": 1}}
	new := Run{ID: "new", Metrics: map[string]float64{"ns": 103, "allocs": 3, "fresh": 1, "same": 1}}
	deltas := Compare(old, new)
	byName := make(map[string]Delta)
	for _, d := range deltas {
		byName[d.Metric] = d
	}
	if d := byName["ns"]; d.Pct < 2.9 || d.Pct > 3.1 {
		t.Errorf("ns pct = %v, want ~3", d.Pct)
	}
	if !byName["ns"].Significant(2.0) || byName["ns"].Significant(5.0) {
		t.Error("ns significance should follow the threshold")
	}
	// 0 → 3 allocs has no percent form but must always be significant.
	if !byName["allocs"].Significant(50.0) {
		t.Error("0 → nonzero must be significant at any threshold")
	}
	if byName["gone"].OnlyIn != "old" || byName["fresh"].OnlyIn != "new" {
		t.Errorf("OnlyIn not tracked: gone=%q fresh=%q", byName["gone"].OnlyIn, byName["fresh"].OnlyIn)
	}
	if !byName["gone"].Significant(99) || !byName["fresh"].Significant(99) {
		t.Error("appeared/vanished metrics must be significant")
	}
	if byName["same"].Significant(0.0001) {
		t.Error("identical values are never significant")
	}

	md := CompareMarkdown("old", "new", deltas, 2.0, true)
	for _, want := range []string{"| ns | 100 | 103 | +3.0% |", "0 → nonzero", "removed", "new", "omitted"} {
		if !strings.Contains(md, want) {
			t.Errorf("compare markdown missing %q:\n%s", want, md)
		}
	}
}

func TestTrendMarkdownAndSparkline(t *testing.T) {
	runs := []Run{
		{ID: "1", Metrics: map[string]float64{"ns": 100, "once": 1}},
		{ID: "2", Metrics: map[string]float64{"ns": 150}},
		{ID: "3", Metrics: map[string]float64{"ns": 200}},
	}
	md := TrendMarkdown(runs, []string{"ns", "once", "absent"}, 16)
	if !strings.Contains(md, "| ns |") || !strings.Contains(md, "+100.0%") {
		t.Errorf("trend table missing the ns row:\n%s", md)
	}
	if strings.Contains(md, "once") {
		t.Errorf("single-sample metric should be skipped:\n%s", md)
	}
	// The sparkline must span the dynamic range: min maps low, max high.
	s := sparkline([]float64{1, 2, 3}, 8)
	if !strings.ContainsRune(s, '▁') || !strings.ContainsRune(s, '█') {
		t.Errorf("sparkline %q does not span min→max glyphs", s)
	}
	if sparkline(nil, 8) != "" {
		t.Error("empty series should render empty")
	}
}

func TestIngestSnapshotJSON(t *testing.T) {
	blob := `{
	  "counters": {"writebacks": 3000},
	  "gauges": {"flip_frac": 0.096},
	  "hists": {"write_slots": {"bounds": [0,1], "counts": [0, 2, 1], "n": 3, "sum": 4}}
	}`
	run := Run{ID: "t"}
	if err := IngestSnapshotJSON(&run, strings.NewReader(blob)); err != nil {
		t.Fatal(err)
	}
	if run.Metrics["metrics:writebacks"] != 3000 || run.Metrics["metrics:flip_frac"] != 0.096 {
		t.Errorf("counters/gauges not ingested: %v", run.Metrics)
	}
	if got := run.Metrics["metrics:write_slots:mean"]; got < 1.33 || got > 1.34 {
		t.Errorf("hist mean = %v, want 4/3", got)
	}
	if run.Metrics["metrics:write_slots:n"] != 3 {
		t.Errorf("hist n = %v, want 3", run.Metrics["metrics:write_slots:n"])
	}
}

func TestIngestRunMetaJSON(t *testing.T) {
	blob := `{"tool": "deucesim", "build": {"git_sha": "abc123"}, "duration_ms": 88.5}`
	run := Run{ID: "t"}
	if err := IngestRunMetaJSON(&run, strings.NewReader(blob)); err != nil {
		t.Fatal(err)
	}
	if run.Metrics["run:deucesim:duration_ms"] != 88.5 {
		t.Errorf("duration not ingested: %v", run.Metrics)
	}
	if run.Commit != "abc123" || run.Source != "deucesim" {
		t.Errorf("identity not adopted: commit=%q source=%q", run.Commit, run.Source)
	}
}

func TestIngestBenchJSON(t *testing.T) {
	blob := `{"benchmark": "BenchmarkWriteHot", "results": [
	  {"scheme": "deuce", "ns_per_op": 1122, "bytes_per_op": 0, "allocs_per_op": 0},
	  {"scheme": "invmm", "ns_per_op": 1496, "bytes_per_op": 277, "allocs_per_op": 5}
	]}`
	run := Run{ID: "t"}
	if err := IngestBenchJSON(&run, strings.NewReader(blob)); err != nil {
		t.Fatal(err)
	}
	if run.Metrics["bench:WriteHot/deuce:ns_per_op"] != 1122 {
		t.Errorf("deuce ns_per_op not ingested: %v", run.Metrics)
	}
	if run.Metrics["bench:WriteHot/invmm:allocs_per_op"] != 5 {
		t.Errorf("invmm allocs_per_op not ingested: %v", run.Metrics)
	}
}

func TestIngestBenchText(t *testing.T) {
	out := `goos: linux
BenchmarkWriteHot/deuce-8         1000000    1122 ns/op    0 B/op    0 allocs/op
BenchmarkWriteHot/encr-dcw-8       500000     637.9 ns/op  0 B/op    0 allocs/op
BenchmarkFlipRate                  200000     95.0 ns/op   22.5 flips%
PASS
`
	run := Run{ID: "t"}
	if err := IngestBenchText(&run, strings.NewReader(out)); err != nil {
		t.Fatal(err)
	}
	// The -8 GOMAXPROCS suffix must be stripped so names match across hosts.
	if run.Metrics["bench:WriteHot/deuce:ns_per_op"] != 1122 {
		t.Errorf("WriteHot/deuce not ingested (suffix handling?): %v", run.Metrics)
	}
	if run.Metrics["bench:WriteHot/encr-dcw:bytes_per_op"] != 0 {
		t.Errorf("encr-dcw bytes_per_op missing: %v", run.Metrics)
	}
	if run.Metrics["bench:FlipRate:flips_pct"] != 22.5 {
		t.Errorf("custom unit not normalized: %v", run.Metrics)
	}
	if err := IngestBenchText(&Run{ID: "x"}, strings.NewReader("no benchmarks here\n")); err == nil {
		t.Error("bench text with no benchmark lines should fail")
	}
}

func TestIngestValues(t *testing.T) {
	run := Run{ID: "t"}
	inf := 1.0
	IngestValues(&run, "fig10", map[string]float64{
		"flips/DEUCE": 0.228,
		"bad":         inf / 0, // +Inf must be skipped, not recorded
	})
	if run.Metrics["fidelity:fig10:flips/DEUCE"] != 0.228 {
		t.Errorf("values not namespaced: %v", run.Metrics)
	}
	if _, ok := run.Metrics["fidelity:fig10:bad"]; ok {
		t.Error("non-finite value leaked into the ledger")
	}
}

func TestHistoryAndMetricNames(t *testing.T) {
	runs := []Run{
		{ID: "1", Time: time.Unix(1, 0), Metrics: map[string]float64{"a": 1}},
		{ID: "2", Time: time.Unix(2, 0), Metrics: map[string]float64{"a": 2, "b": 9}},
	}
	vals, idx := History(runs, "a")
	if len(vals) != 2 || vals[1] != 2 || idx[1] != 1 {
		t.Errorf("History = %v, %v", vals, idx)
	}
	names := MetricNames(runs)
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("MetricNames = %v", names)
	}
}

// TestIngestSpanProfile: a span self-profile lands in the ledger as
// walltime: metrics — the tree extent plus per-name total and self times.
func TestIngestSpanProfile(t *testing.T) {
	doc := `{"wall_ns": 2000000, "spans": 3, "entries": [
		{"name": "fidelity.check", "count": 1, "total_ns": 2000000, "self_ns": 500000, "max_ns": 2000000},
		{"name": "cell/flip", "count": 2, "total_ns": 1500000, "self_ns": 1500000, "max_ns": 900000}]}`
	var run Run
	if err := IngestSpanProfile(&run, strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"walltime:wall:ns":                 2e6,
		"walltime:fidelity.check:total_ns": 2e6,
		"walltime:fidelity.check:self_ns":  5e5,
		"walltime:cell/flip:total_ns":      1.5e6,
		"walltime:cell/flip:self_ns":       1.5e6,
	}
	for name, v := range want {
		if run.Metrics[name] != v {
			t.Errorf("%s = %v, want %v", name, run.Metrics[name], v)
		}
	}
	if len(run.Metrics) != len(want) {
		t.Errorf("ingested %d metrics, want %d: %v", len(run.Metrics), len(want), run.Metrics)
	}
	if !IsWalltime("walltime:gate:ns") || IsWalltime("bench:X:ns_per_op") {
		t.Error("IsWalltime misclassifies the walltime namespace")
	}
}

// TestIngestServeJSON: a BENCH_serve.json serving record lands in the
// ledger as serve: metrics — throughput and latency quantiles per
// scheme×front, plus the read/write p99 split. A result without a front
// label (a record from before the front-pluggable harness) ingests as
// the coarse front it measured.
func TestIngestServeJSON(t *testing.T) {
	doc := `{"benchmark": "BenchmarkServe", "results": [
		{"scheme": "deuce", "front": "sharded", "ops_per_sec": 650000,
		 "lat": {"n": 20000, "mean_ns": 900, "p50_ns": 700, "p90_ns": 1200, "p99_ns": 4700, "p999_ns": 29000, "max_ns": 150000},
		 "read_lat": {"p99_ns": 3800}, "write_lat": {"p99_ns": 5400}},
		{"scheme": "encr-dcw", "ops_per_sec": 880000,
		 "lat": {"mean_ns": 800, "p50_ns": 600, "p90_ns": 1100, "p99_ns": 4100, "p999_ns": 21000},
		 "read_lat": {"p99_ns": 3200}, "write_lat": {"p99_ns": 4800}}]}`
	var run Run
	if err := IngestServeJSON(&run, strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"serve:deuce:sharded:ops_per_sec":   650000,
		"serve:deuce:sharded:mean_ns":       900,
		"serve:deuce:sharded:p50_ns":        700,
		"serve:deuce:sharded:p90_ns":        1200,
		"serve:deuce:sharded:p99_ns":        4700,
		"serve:deuce:sharded:p999_ns":       29000,
		"serve:deuce:sharded:read_p99_ns":   3800,
		"serve:deuce:sharded:write_p99_ns":  5400,
		"serve:encr-dcw:coarse:ops_per_sec": 880000,
		"serve:encr-dcw:coarse:p99_ns":      4100,
		"serve:encr-dcw:coarse:read_p99_ns": 3200,
	}
	for name, v := range want {
		if run.Metrics[name] != v {
			t.Errorf("%s = %v, want %v", name, run.Metrics[name], v)
		}
	}
	if len(run.Metrics) != 16 { // 8 metrics per scheme×front
		t.Errorf("ingested %d metrics, want 16: %v", len(run.Metrics), run.Metrics)
	}
	if !IsServe("serve:deuce:coarse:p99_ns") || IsServe("bench:X:ns_per_op") || IsServe("walltime:gate:ns") {
		t.Error("IsServe misclassifies the serve namespace")
	}
}

// TestIngestServeJSONRejectsEmpty: an empty or schemeless record must
// fail loudly instead of recording a run with no serving metrics.
func TestIngestServeJSONRejectsEmpty(t *testing.T) {
	var run Run
	if err := IngestServeJSON(&run, strings.NewReader(`{"benchmark": "BenchmarkServe", "results": []}`)); err == nil {
		t.Error("empty results accepted")
	}
	if err := IngestServeJSON(&run, strings.NewReader(`{"results": [{"ops_per_sec": 1}]}`)); err == nil {
		t.Error("schemeless result accepted")
	}
	if err := IngestServeJSON(&run, strings.NewReader(`not json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}
