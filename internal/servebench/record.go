// BENCH_serve.json record writing, shared by cmd/deuceserve and
// ci/benchserve so the interactive harness and the CI lane emit the same
// schema the regression ledger ingests.

package servebench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
)

// BenchDoc is the BENCH_serve.json document: the standard BENCH_* header
// (benchmark/date/host fields, as in BENCH_writehot.json) plus the run
// configuration and one Result per measured scheme. `deucereport record
// -serve` ingests it into the perf ledger as serve: metrics.
type BenchDoc struct {
	// Benchmark names the measurement (always "BenchmarkServe").
	Benchmark string `json:"benchmark"`
	// Description says what was measured and how to regenerate it.
	Description string `json:"description"`
	// Date is the run date (YYYY-MM-DD).
	Date string `json:"date"`
	// Goos is runtime.GOOS at measurement time.
	Goos string `json:"goos"`
	// Goarch is runtime.GOARCH at measurement time.
	Goarch string `json:"goarch"`
	// CPU is the host CPU model, best effort.
	CPU string `json:"cpu"`
	// Go is the toolchain version.
	Go string `json:"go"`
	// Cores is runtime.NumCPU.
	Cores int `json:"cores"`
	// Config is the workload shape every scheme ran under.
	Config BenchConfig `json:"config"`
	// Results holds one serving measurement per scheme.
	Results []Result `json:"results"`
	// Notes carries caveats (runner noise, scale) for human readers.
	Notes string `json:"notes"`
}

// BenchConfig is the workload-shape header recorded alongside results so
// a ledger comparison knows two records measured the same thing.
type BenchConfig struct {
	// Fronts lists the front ends measured, in result order (deduped).
	Fronts []string `json:"fronts"`
	// Shards is the shard count the sharded front ran with (0 when only
	// the coarse front was measured).
	Shards int `json:"shards,omitempty"`
	// Clients is the client goroutine count.
	Clients int `json:"clients"`
	// Ops is the request count per scheme.
	Ops int `json:"ops"`
	// ReadFraction is the Get probability.
	ReadFraction float64 `json:"read_fraction"`
	// Lines is the memory capacity in lines.
	Lines int `json:"lines"`
	// Keys is the keyspace size.
	Keys int `json:"keys"`
	// ZipfS is the key-popularity skew exponent.
	ZipfS float64 `json:"zipf_s"`
	// Seed is the workload seed.
	Seed int64 `json:"seed"`
}

// NewBenchDoc assembles a BenchDoc from a run's configuration and
// per-scheme results, stamping the host fields. date is YYYY-MM-DD
// (passed in, not sampled here, so tests can pin it).
func NewBenchDoc(cfg Config, results []Result, date string) BenchDoc {
	cfg.setDefaults()
	var schemes, fronts []string
	shards := 0
	seenScheme := map[string]bool{}
	seenFront := map[string]bool{}
	for _, r := range results {
		if !seenScheme[r.Scheme] {
			seenScheme[r.Scheme] = true
			schemes = append(schemes, r.Scheme)
		}
		if !seenFront[r.Front] {
			seenFront[r.Front] = true
			fronts = append(fronts, r.Front)
		}
		if r.Front == FrontSharded {
			shards = r.Shards
		}
	}
	return BenchDoc{
		Benchmark: "BenchmarkServe",
		Description: fmt.Sprintf("Concurrent serving harness: %d clients, %d Zipfian(s=%g) mixed ops (%.0f%% reads) per scheme×front against a %d-line memory; schemes %s; fronts %s. Latency from lock-free striped histograms (~3%% bucket error, max exact). Regenerate with `make bench-serve`.",
			cfg.Clients, cfg.Ops, cfg.ZipfS, cfg.ReadFraction*100, cfg.Lines,
			strings.Join(schemes, ", "), strings.Join(fronts, ", ")),
		Date:   date,
		Goos:   runtime.GOOS,
		Goarch: runtime.GOARCH,
		CPU:    cpuModel(),
		Go:     runtime.Version(),
		Cores:  runtime.NumCPU(),
		Config: BenchConfig{
			Fronts:       fronts,
			Shards:       shards,
			Clients:      cfg.Clients,
			Ops:          cfg.Ops,
			ReadFraction: cfg.ReadFraction,
			Lines:        cfg.Lines,
			Keys:         cfg.Keys,
			ZipfS:        cfg.ZipfS,
			Seed:         cfg.Seed,
		},
		Results: results,
		Notes:   "Latency quantiles and throughput are host- and load-sensitive: the ledger gates serve: metrics at the loose walltime threshold, never the ±2% value threshold. The coarse front is the single-lock baseline; the sharded front (internal/servefront) is the single-writer-line contender measured side by side.",
	}
}

// WriteJSON writes the document to path, indented, trailing newline.
func (d BenchDoc) WriteJSON(path string) error {
	blob, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// cpuModel best-effort reads the CPU model name for the record header.
func cpuModel() string {
	blob, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(blob), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}
