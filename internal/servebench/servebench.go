// Package servebench is the concurrent serving benchmark: N client
// goroutines issue a Zipfian mixed read/write key-value workload against
// a pluggable concurrency front end, with per-request latency telemetry
// recorded through internal/obs/serve (striped counters, lock-free
// log-bucketed latency histograms) and reduced to p50/p90/p99/p999 plus
// throughput per scheme — the BENCH_serve.json record the regression
// ledger ingests.
//
// Two front ends implement the Front interface. Coarse is the deliberate
// baseline: one single-writer lock around one shared kvstore, every
// request serializing through it. servefront.Sharded is the contender:
// S independent line-region shards, each with its own scheme instance
// and lock, so requests to different shards never contend. Both report
// the same merged deuce.Stats, so the paper's write accounting is
// comparable across fronts bit-for-bit. The telemetry itself never
// serializes anything: recording a request is a few atomic adds into
// per-client stripes, so the front end is the only coordination point
// in the loop.
package servebench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"deuce"
	"deuce/internal/kvstore"
	"deuce/internal/obs/serve"
	"deuce/internal/servefront"

	"math/rand"
)

// Front names accepted by Config.Front.
const (
	// FrontCoarse is the single-lock baseline front end.
	FrontCoarse = "coarse"
	// FrontSharded is the sharded single-writer-line front end
	// (internal/servefront).
	FrontSharded = "sharded"
)

// Config sizes one serving run. The zero value of every field selects a
// default; Clients and Ops set the concurrency and total request count.
type Config struct {
	// Scheme is the write scheme under test; empty means DEUCE.
	Scheme deuce.Scheme
	// Front selects the concurrency front end: FrontCoarse (default) or
	// FrontSharded.
	Front string
	// Shards is the shard count when Front is FrontSharded (default 8;
	// ignored by the coarse front). Lines must split evenly over it.
	Shards int
	// Clients is the number of concurrent client goroutines (default 8).
	Clients int
	// Ops is the total request count across all clients (default 20000).
	Ops int
	// ReadFraction is the probability a request is a Get. Values outside
	// (0,1] — including the zero value — select the 0.5 default; 1 means
	// read-only. (A write-only run is not expressible; the store's write
	// cost already has a dedicated harness in examples/securekv.)
	ReadFraction float64
	// Keys is the keyspace size (default Lines/4, so the table stays
	// sparse enough for linear probing).
	Keys int
	// Lines is the memory capacity in 64-byte lines (default 4096).
	Lines int
	// ZipfS is the Zipfian skew exponent (>1; default 1.1 — a hot-key
	// distribution shaped like KV serving traffic).
	ZipfS float64
	// Seed seeds the per-client workload generators (default 1).
	Seed int64
	// StreamInterval is the JSONL snapshot cadence when a stream writer
	// is passed to Run (default 1s).
	StreamInterval time.Duration
	// ExpvarName, when non-empty, publishes the run's live metrics under
	// this expvar name (visible on obs.ServeDebug's /debug/vars).
	ExpvarName string
}

func (c *Config) setDefaults() {
	if c.Scheme == "" {
		c.Scheme = deuce.DEUCE
	}
	if c.Front == "" {
		c.Front = FrontCoarse
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Ops <= 0 {
		c.Ops = 20000
	}
	if c.ReadFraction <= 0 || c.ReadFraction > 1 {
		c.ReadFraction = 0.5
	}
	if c.Lines <= 0 {
		c.Lines = 4096
	}
	if c.Keys <= 0 {
		c.Keys = c.Lines / 4
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.StreamInterval <= 0 {
		c.StreamInterval = time.Second
	}
}

// MemStats is the memory-side write accounting of one serving run: the
// exact integer counters from the front end's merged deuce.Stats,
// recorded so BENCH_serve.json proves both fronts did identical
// memory-level work (latency varies with the host; flips must not).
type MemStats struct {
	// Writes is the total line writes (preload included).
	Writes uint64 `json:"writes"`
	// Reads is the total line reads.
	Reads uint64 `json:"reads"`
	// BitFlips is the total cell bit flips — the paper's figure of merit.
	BitFlips uint64 `json:"bit_flips"`
	// WriteSlots is the total 128-bit write slots consumed.
	WriteSlots uint64 `json:"write_slots"`
}

// Result is one scheme's serving measurement: counts, wall clock,
// throughput, and the latency quantile summaries (overall, reads,
// writes). Its JSON shape is the per-scheme record inside
// BENCH_serve.json.
type Result struct {
	// Scheme is the measured write scheme.
	Scheme string `json:"scheme"`
	// Front is the front end measured (FrontCoarse or FrontSharded).
	Front string `json:"front"`
	// Shards is the shard count the front used (1 for coarse).
	Shards int `json:"shards"`
	// Clients is the client goroutine count the run used.
	Clients int `json:"clients"`
	// Ops is the completed request count.
	Ops uint64 `json:"ops"`
	// Reads is the completed Get count.
	Reads uint64 `json:"reads"`
	// Writes is the completed Put count.
	Writes uint64 `json:"writes"`
	// Misses is the Get count that found no record. A miss is a workload
	// property, not a failure; it is reported here and never aborts a
	// run.
	Misses uint64 `json:"misses"`
	// DurationNs is the measured wall clock of the request phase.
	DurationNs int64 `json:"duration_ns"`
	// OpsPerSec is Ops over the measured duration.
	OpsPerSec float64 `json:"ops_per_sec"`
	// Mem is the front end's merged memory accounting after the run.
	Mem MemStats `json:"mem"`
	// Lat summarizes every request's latency (exact merge of the read
	// and write histograms).
	Lat serve.Quantiles `json:"lat"`
	// ReadLat summarizes Get latencies.
	ReadLat serve.Quantiles `json:"read_lat"`
	// WriteLat summarizes Put latencies.
	WriteLat serve.Quantiles `json:"write_lat"`
}

// Front is the concurrency front end under test. Implementations must be
// safe for concurrent use; Get copies the value into dst (sized
// kvstore.MaxVal by callers) so the request loop allocates nothing.
type Front interface {
	// Get fetches key's value into dst, reporting its length and
	// whether the key was present.
	Get(key string, dst []byte) (int, bool)
	// Put inserts or updates a record.
	Put(key, value string) error
	// Stats reports the merged memory accounting across the front end's
	// scheme instances.
	Stats() deuce.Stats
}

// Coarse is the single-lock baseline front end: one shared kvstore, every
// request — read or write — serialized through one mutex.
type Coarse struct {
	mu  sync.Mutex
	kv  *kvstore.Store
	mem *deuce.Memory
}

// NewCoarse wraps mem's kvstore in the coarse single-lock front end.
func NewCoarse(mem *deuce.Memory) *Coarse {
	return &Coarse{kv: kvstore.New(mem), mem: mem}
}

// Get serializes a read through the front-end lock.
func (f *Coarse) Get(key string, dst []byte) (int, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.kv.GetInto(key, dst)
}

// Put serializes a write through the front-end lock.
func (f *Coarse) Put(key, value string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.kv.Put(key, value)
}

// Stats reports the backing memory's accounting.
func (f *Coarse) Stats() deuce.Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.mem.Stats()
}

// newFront builds the configured front end.
func newFront(cfg Config) (Front, int, error) {
	switch cfg.Front {
	case FrontCoarse:
		mem, err := deuce.New(deuce.Options{Lines: cfg.Lines, Scheme: cfg.Scheme})
		if err != nil {
			return nil, 0, err
		}
		return NewCoarse(mem), 1, nil
	case FrontSharded:
		sf, err := servefront.New(servefront.Config{
			Scheme: cfg.Scheme,
			Shards: cfg.Shards,
			Lines:  cfg.Lines,
		})
		if err != nil {
			return nil, 0, err
		}
		return sf, cfg.Shards, nil
	default:
		return nil, 0, fmt.Errorf("servebench: unknown front %q (want %s or %s)",
			cfg.Front, FrontCoarse, FrontSharded)
	}
}

// Run executes one serving benchmark: build the configured front end,
// preload the keyspace, then fire Clients goroutines at it until Ops
// requests complete, recording per-request latency into striped
// histograms. When stream is non-nil, a serve.Streamer emits JSONL
// snapshots every StreamInterval while the run is in flight.
func Run(cfg Config, stream io.Writer) (Result, error) {
	cfg.setDefaults()
	front, shards, err := newFront(cfg)
	if err != nil {
		return Result{}, err
	}

	// Preload every key (unmeasured) and pre-generate keys and values so
	// the request loop allocates nothing of its own — per-op cost is the
	// front end plus telemetry, not fmt.
	keys := make([]string, cfg.Keys)
	for i := range keys {
		keys[i] = fmt.Sprintf("k-%06d", i)
		if err := front.Put(keys[i], "0"); err != nil {
			return Result{}, fmt.Errorf("servebench: preload: %w", err)
		}
	}
	vals := make([]string, 256)
	for i := range vals {
		vals[i] = fmt.Sprintf("v-%08d", i*i)
	}

	m := serve.NewMetrics(cfg.Clients)
	ops := m.Counter("ops")
	reads := m.Counter("reads")
	writes := m.Counter("writes")
	misses := m.Counter("misses")
	errs := m.Counter("errors")
	inflight := m.Gauge("inflight")
	latRead := m.Hist("lat_read")
	latWrite := m.Hist("lat_write")
	if cfg.ExpvarName != "" {
		m.Expvar(cfg.ExpvarName)
	}

	var streamer *serve.Streamer
	if stream != nil {
		streamer = serve.NewStreamer(m, stream, cfg.StreamInterval)
		streamer.Start()
	}

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Clients; w++ {
		n := cfg.Ops / cfg.Clients
		if w < cfg.Ops%cfg.Clients {
			n++
		}
		wg.Add(1)
		go func(stripe, n int) {
			defer wg.Done()
			// Per-client generators: no shared RNG state, deterministic
			// per (seed, client) request sequence. The value buffer is
			// per-client too, so Gets stay zero-allocation.
			rng := rand.New(rand.NewSource(cfg.Seed + int64(stripe)*7919))
			zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(keys)-1))
			rHist := latRead.Stripe(stripe)
			wHist := latWrite.Stripe(stripe)
			var vbuf [kvstore.MaxVal]byte
			for i := 0; i < n; i++ {
				key := keys[zipf.Uint64()]
				isRead := rng.Float64() < cfg.ReadFraction
				inflight.Add(stripe, 1)
				t0 := time.Now()
				if isRead {
					_, ok := front.Get(key, vbuf[:])
					d := time.Since(t0)
					rHist.Observe(uint64(d.Nanoseconds()))
					reads.Inc(stripe)
					if !ok {
						// A miss is workload shape, not failure.
						misses.Inc(stripe)
					}
				} else {
					err := front.Put(key, vals[i%len(vals)])
					d := time.Since(t0)
					wHist.Observe(uint64(d.Nanoseconds()))
					writes.Inc(stripe)
					if err != nil {
						errs.Inc(stripe)
					}
				}
				ops.Inc(stripe)
				inflight.Add(stripe, -1)
			}
		}(w, n)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if streamer != nil {
		if err := streamer.Stop(); err != nil {
			return Result{}, err
		}
	}

	// Only Put failures are real errors (a full table means the run was
	// missized). Get misses are reported in the result, never fatal.
	if n := errs.Value(); n != 0 {
		return Result{}, fmt.Errorf("servebench: %d writes failed (full table?)", n)
	}

	// Final summary from quiesced metrics: exact counts, and the overall
	// latency distribution as the exact merge of the read and write
	// histograms — the property the striped design guarantees.
	readSnap, _ := m.HistSnapshot("lat_read")
	writeSnap, _ := m.HistSnapshot("lat_write")
	st := front.Stats()
	res := Result{
		Scheme:     string(cfg.Scheme),
		Front:      cfg.Front,
		Shards:     shards,
		Clients:    cfg.Clients,
		Ops:        ops.Value(),
		Reads:      reads.Value(),
		Writes:     writes.Value(),
		Misses:     misses.Value(),
		DurationNs: elapsed.Nanoseconds(),
		Mem: MemStats{
			Writes:     st.Writes,
			Reads:      st.Reads,
			BitFlips:   st.BitFlips,
			WriteSlots: st.WriteSlots,
		},
		Lat:      readSnap.Merge(writeSnap).Summarize(),
		ReadLat:  readSnap.Summarize(),
		WriteLat: writeSnap.Summarize(),
	}
	if elapsed > 0 {
		res.OpsPerSec = float64(res.Ops) / elapsed.Seconds()
	}
	return res, nil
}

// SummaryLine renders the one-line per-scheme summary the serving harness
// prints: scheme, front end, scale, throughput, and the p50/p99 split.
// Pinned by a golden test — scripts grep it.
func (r Result) SummaryLine() string {
	return fmt.Sprintf("serve %-10s %-7s %3d clients  %7d ops in %8s  %9.0f ops/s  p50 %-9s p99 %-9s (reads p99 %s, writes p99 %s)",
		r.Scheme, r.Front, r.Clients, r.Ops,
		time.Duration(r.DurationNs).Round(time.Millisecond),
		r.OpsPerSec,
		fmtNs(r.Lat.P50Ns), fmtNs(r.Lat.P99Ns),
		fmtNs(r.ReadLat.P99Ns), fmtNs(r.WriteLat.P99Ns))
}

// fmtNs renders a nanosecond quantile compactly (1.23µs style).
func fmtNs(ns float64) string {
	d := time.Duration(int64(ns))
	switch {
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.2fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}
