package servebench

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"deuce"
)

func TestRunCountsAndQuantiles(t *testing.T) {
	cfg := Config{
		Scheme:       deuce.DEUCE,
		Clients:      4,
		Ops:          2000,
		ReadFraction: 0.5,
		Lines:        1024,
		Seed:         7,
	}
	res, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 2000 {
		t.Fatalf("ops = %d, want 2000", res.Ops)
	}
	if res.Reads+res.Writes != res.Ops {
		t.Fatalf("reads(%d)+writes(%d) != ops(%d)", res.Reads, res.Writes, res.Ops)
	}
	if res.Reads == 0 || res.Writes == 0 {
		t.Fatalf("mixed workload produced reads=%d writes=%d", res.Reads, res.Writes)
	}
	if res.OpsPerSec <= 0 {
		t.Fatalf("ops/sec = %g, want > 0", res.OpsPerSec)
	}
	// The overall distribution is the exact merge of reads and writes.
	if res.Lat.N != res.ReadLat.N+res.WriteLat.N {
		t.Fatalf("lat n=%d != read n=%d + write n=%d", res.Lat.N, res.ReadLat.N, res.WriteLat.N)
	}
	if res.Lat.P50Ns <= 0 || res.Lat.P99Ns < res.Lat.P50Ns {
		t.Fatalf("implausible quantiles: p50=%g p99=%g", res.Lat.P50Ns, res.Lat.P99Ns)
	}
	if res.Lat.P999Ns < res.Lat.P99Ns || float64(res.Lat.MaxNs) < res.Lat.P999Ns {
		t.Fatalf("quantiles not monotone: p99=%g p999=%g max=%d",
			res.Lat.P99Ns, res.Lat.P999Ns, res.Lat.MaxNs)
	}
	if res.Scheme != string(deuce.DEUCE) {
		t.Fatalf("scheme = %q, want %q", res.Scheme, deuce.DEUCE)
	}
	if res.Front != FrontCoarse || res.Shards != 1 {
		t.Fatalf("default front = %q/%d, want coarse/1", res.Front, res.Shards)
	}
	if res.Mem.Writes == 0 || res.Mem.BitFlips == 0 {
		t.Fatalf("memory accounting missing: %+v", res.Mem)
	}
	// Every key is preloaded, so the workload cannot miss.
	if res.Misses != 0 {
		t.Fatalf("misses = %d on a fully preloaded keyspace", res.Misses)
	}
}

// Both fronts run the identical deterministic workload: same request
// counts, same read/write split. Latency and placement-dependent memory
// accounting may differ; the request stream must not.
func TestRunShardedFront(t *testing.T) {
	base := Config{Scheme: deuce.DEUCE, Clients: 4, Ops: 2000, Lines: 1024, Seed: 7}

	coarse := base
	coarse.Front = FrontCoarse
	cr, err := Run(coarse, nil)
	if err != nil {
		t.Fatal(err)
	}

	sharded := base
	sharded.Front = FrontSharded
	sharded.Shards = 4
	sr, err := Run(sharded, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Front != FrontSharded || sr.Shards != 4 {
		t.Fatalf("sharded result labeled %q/%d", sr.Front, sr.Shards)
	}
	if sr.Ops != cr.Ops || sr.Reads != cr.Reads || sr.Writes != cr.Writes {
		t.Fatalf("fronts ran different workloads: sharded %d/%d/%d vs coarse %d/%d/%d",
			sr.Ops, sr.Reads, sr.Writes, cr.Ops, cr.Reads, cr.Writes)
	}
	if sr.Misses != 0 {
		t.Fatalf("sharded front lost %d preloaded keys", sr.Misses)
	}
	// Line writes are placement-independent: one per Put, preload
	// included — so the totals agree exactly across fronts.
	if sr.Mem.Writes != cr.Mem.Writes {
		t.Fatalf("line writes diverge across fronts: sharded %d, coarse %d",
			sr.Mem.Writes, cr.Mem.Writes)
	}
}

func TestRunRejectsUnknownFront(t *testing.T) {
	if _, err := Run(Config{Front: "fine-grained", Clients: 1, Ops: 10, Lines: 256}, nil); err == nil {
		t.Fatal("unknown front accepted")
	}
}

func TestRunAllSchemes(t *testing.T) {
	for _, scheme := range []deuce.Scheme{deuce.EncrDCW, deuce.DEUCE, deuce.DynDEUCE} {
		res, err := Run(Config{Scheme: scheme, Clients: 2, Ops: 400, Lines: 512}, nil)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if res.Ops != 400 {
			t.Fatalf("%s: ops = %d, want 400", scheme, res.Ops)
		}
	}
}

// A streamed run must emit parseable JSONL snapshot records whose final
// cumulative record agrees with the run's own counts.
func TestRunStreamsJSONL(t *testing.T) {
	var buf bytes.Buffer
	res, err := Run(Config{Clients: 2, Ops: 500, Lines: 512, StreamInterval: time.Millisecond}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var last struct {
		Counters map[string]uint64 `json:"counters"`
	}
	lines := 0
	for sc.Scan() {
		lines++
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", lines, err, sc.Text())
		}
	}
	if lines == 0 {
		t.Fatal("stream emitted no records")
	}
	if got := last.Counters["ops"]; got != res.Ops {
		t.Fatalf("final stream record ops=%d, want %d", got, res.Ops)
	}
}

// The one-line summary format is load-bearing: scripts grep it, and the
// README quotes it. Pin it with a fixed Result.
func TestSummaryLineGolden(t *testing.T) {
	r := Result{
		Scheme:     "deuce",
		Front:      FrontCoarse,
		Shards:     1,
		Clients:    8,
		Ops:        20000,
		Reads:      10000,
		Writes:     10000,
		DurationNs: int64(1250 * time.Millisecond),
		OpsPerSec:  16000,
	}
	r.Lat.P50Ns = 1500
	r.Lat.P99Ns = 42000
	r.ReadLat.P99Ns = 900
	r.WriteLat.P99Ns = 61000
	got := r.SummaryLine()
	want := "serve deuce      coarse    8 clients    20000 ops in    1.25s      16000 ops/s  p50 1.50µs    p99 42.00µs   (reads p99 900ns, writes p99 61.00µs)"
	if got != want {
		t.Fatalf("summary line drifted:\n got: %q\nwant: %q", got, want)
	}
}

func TestFmtNs(t *testing.T) {
	cases := []struct {
		ns   float64
		want string
	}{
		{0, "0ns"},
		{999, "999ns"},
		{1500, "1.50µs"},
		{2500000, "2.50ms"},
	}
	for _, c := range cases {
		if got := fmtNs(c.ns); got != c.want {
			t.Errorf("fmtNs(%g) = %q, want %q", c.ns, got, c.want)
		}
	}
}

// Identical configs must produce identical workloads: same read/write
// split, byte-for-byte. (Latency obviously differs; counts must not.)
func TestWorkloadDeterminism(t *testing.T) {
	cfg := Config{Clients: 3, Ops: 900, Lines: 512, Seed: 13}
	a, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Reads != b.Reads || a.Writes != b.Writes {
		t.Fatalf("same seed, different workload: %d/%d vs %d/%d",
			a.Reads, a.Writes, b.Reads, b.Writes)
	}
}

func TestSummaryLineContainsScheme(t *testing.T) {
	res, err := Run(Config{Scheme: deuce.DynDEUCE, Clients: 2, Ops: 200, Lines: 512}, nil)
	if err != nil {
		t.Fatal(err)
	}
	line := res.SummaryLine()
	if !strings.Contains(line, "dyndeuce") || !strings.Contains(line, "ops/s") {
		t.Fatalf("summary line missing fields: %q", line)
	}
}
