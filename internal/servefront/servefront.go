// Package servefront is the sharded, single-writer-line serving front
// end: S independent line-region shards, each owning a contiguous line
// region backed by its own deuce.Memory-backed scheme instance and kvstore
// region store behind its own mutex, with key→shard routing by hash.
// Thousands of client goroutines hammering distinct keys land on disjoint
// shards and never contend, while the per-shard lock serializes each
// region exactly like a single-goroutine owner would — the same
// single-writer-line discipline the deterministic timing engine enforces
// via timing.ErrSharedLine (DESIGN.md §9), here made unviolable by
// construction: a line belongs to exactly one shard, and only that
// shard's lock holder can touch it.
//
// Per-shard scheme instances mirror exp.runPerfSharded: shard state
// (cells, counters, epochs, scratch) is fully disjoint, so per-cell write
// accounting stays exact and Stats can merge the per-shard deuce.Stats
// integer counters bit-for-bit — the currency of the paper's evaluation
// survives sharding untouched. The differential suite pins this: the
// per-shard serialization order, replayed sequentially against a
// single-lock store of the same region geometry, reproduces identical
// final store contents and identical merged flip/write counts.
package servefront

import (
	"fmt"
	"sync"

	"deuce"
	"deuce/internal/kvstore"
)

// Config sizes a sharded front end. Zero fields select defaults.
type Config struct {
	// Scheme is the write scheme each shard's memory runs; empty means
	// DEUCE.
	Scheme deuce.Scheme
	// Shards is the number of independent line-region shards (default 8).
	Shards int
	// Lines is the total memory capacity in 64-byte lines across all
	// shards (default 4096). Must split evenly: Lines/Shards lines per
	// region, at least one per shard.
	Lines int
	// Record, when set, captures every operation in per-shard logs (in
	// the order the shard lock serialized them) for differential replay
	// suites. Recording allocates; leave it off outside tests.
	Record bool
}

func (c *Config) setDefaults() {
	if c.Scheme == "" {
		c.Scheme = deuce.DEUCE
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Lines <= 0 {
		c.Lines = 4096
	}
}

// Op is one recorded front-end operation, in shard serialization order.
type Op struct {
	// Put distinguishes writes from reads.
	Put bool
	// Key is the operation's key.
	Key string
	// Value is the stored value (Put only).
	Value string
}

// shard is one line region: a scheme instance and its region store behind
// one lock. Shards are allocated individually so two shards' hot state
// never shares a cache line.
type shard struct {
	mu  sync.Mutex
	kv  *kvstore.Store
	mem *deuce.Memory
	rec bool
	ops []Op
}

// Sharded is the sharded single-writer-line front end. Methods are safe
// for arbitrary concurrent use; requests to different shards proceed in
// parallel.
type Sharded struct {
	shards []*shard
	n      uint64
	scheme deuce.Scheme
}

// New builds a sharded front end: Shards independent deuce.Memory
// instances of Lines/Shards lines each, one kvstore region store per
// shard.
func New(cfg Config) (*Sharded, error) {
	cfg.setDefaults()
	if cfg.Lines%cfg.Shards != 0 || cfg.Lines/cfg.Shards < 1 {
		return nil, fmt.Errorf("servefront: %d lines do not split evenly over %d shards", cfg.Lines, cfg.Shards)
	}
	per := cfg.Lines / cfg.Shards
	s := &Sharded{
		shards: make([]*shard, cfg.Shards),
		n:      uint64(cfg.Shards),
		scheme: cfg.Scheme,
	}
	for i := range s.shards {
		mem, err := deuce.New(deuce.Options{Lines: per, Scheme: cfg.Scheme})
		if err != nil {
			return nil, fmt.Errorf("servefront: shard %d: %w", i, err)
		}
		s.shards[i] = &shard{kv: kvstore.New(mem), mem: mem, rec: cfg.Record}
	}
	return s, nil
}

// route picks the owning shard. The region index comes from a finalizer
// mix of the store's own FNV-64a key hash: the raw hash places records
// within a region (slot = hash mod regionLines), so routing on it
// directly would correlate shard choice with slot residue and leave
// region slots unreachable whenever the shard count shares factors with
// the region size. The avalanche mix (splitmix64's finalizer) decorrelates
// the two uses of the same hash bytes.
func (s *Sharded) route(key string) *shard {
	h := kvstore.Hash(key)
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return s.shards[h%s.n]
}

// Get fetches key's value into dst under the owning shard's lock.
func (s *Sharded) Get(key string, dst []byte) (int, bool) {
	sh := s.route(key)
	sh.mu.Lock()
	if sh.rec {
		sh.ops = append(sh.ops, Op{Key: key})
	}
	n, ok := sh.kv.GetInto(key, dst)
	sh.mu.Unlock()
	return n, ok
}

// Put inserts or updates key under the owning shard's lock. A full region
// surfaces as kvstore.ErrFull.
func (s *Sharded) Put(key, value string) error {
	sh := s.route(key)
	sh.mu.Lock()
	if sh.rec {
		sh.ops = append(sh.ops, Op{Put: true, Key: key, Value: value})
	}
	err := sh.kv.Put(key, value)
	sh.mu.Unlock()
	return err
}

// Stats returns the exact merge of every shard's memory stats: the
// integer counters (writes, reads, bit flips, write slots) sum
// bit-for-bit because shard state is disjoint, and the derived averages
// are recomputed from the merged integers — identical to what a single
// memory that executed every shard's operations would report.
func (s *Sharded) Stats() deuce.Stats {
	var agg deuce.Stats
	lineBits := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		st := sh.mem.Stats()
		if lineBits == 0 {
			lineBits = sh.mem.LineBits()
			agg.MetadataBitsPerLine = st.MetadataBitsPerLine
		}
		sh.mu.Unlock()
		agg.Writes += st.Writes
		agg.Reads += st.Reads
		agg.BitFlips += st.BitFlips
		agg.WriteSlots += st.WriteSlots
	}
	if agg.Writes > 0 {
		agg.AvgFlipsPerWrite = float64(agg.BitFlips) / float64(agg.Writes)
		agg.AvgWriteSlots = float64(agg.WriteSlots) / float64(agg.Writes)
		agg.FlipFraction = agg.AvgFlipsPerWrite / float64(lineBits)
	}
	return agg
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// ShardLines returns the line-region size of each shard.
func (s *Sharded) ShardLines() int { return s.shards[0].mem.Lines() }

// ShardStats returns shard i's own memory stats.
func (s *Sharded) ShardStats(i int) deuce.Stats {
	sh := s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.mem.Stats()
}

// Ops returns shard i's recorded operation log, in the order the shard
// lock serialized them. Only meaningful after the front end has quiesced
// and only when Config.Record was set.
func (s *Sharded) Ops(i int) []Op {
	sh := s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.ops
}

// SnapshotShard returns a copy of shard i's decrypted line contents, for
// differential content comparison. It reads every line (and therefore
// counts reads); compare stats before snapshotting. The front end must be
// quiesced.
func (s *Sharded) SnapshotShard(i int) [][]byte {
	sh := s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := make([][]byte, sh.mem.Lines())
	for line := range out {
		buf := make([]byte, 64)
		sh.mem.ReadInto(uint64(line), buf)
		out[line] = buf
	}
	return out
}
