package servefront

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"deuce"
	"deuce/internal/kvstore"
	"deuce/internal/kvstore/kvtest"
)

// TestShardedVsSequentialReplay is the differential suite: a deterministic
// per-(seed,client) workload hammers the sharded front end concurrently,
// then each shard's recorded serialization order is replayed sequentially
// against a fresh single-owner store of the same region geometry. Final
// store contents must match byte-for-byte, per-shard flip/write/read/slot
// counts must match exactly, and the front end's merged Stats must equal
// the sum of the replays — proving the sharded front end is equivalent to
// S sequential owners and that write-cost accounting survives sharding
// bit-for-bit. Run under -race by the race-timing lane.
func TestShardedVsSequentialReplay(t *testing.T) {
	for _, scheme := range []deuce.Scheme{deuce.EncrDCW, deuce.DEUCE, deuce.DynDEUCE} {
		t.Run(string(scheme), func(t *testing.T) {
			const (
				shards  = 4
				lines   = 1024
				keys    = 192
				clients = 8
				opsEach = 400
				seed    = 1
			)
			front, err := New(Config{Scheme: scheme, Shards: shards, Lines: lines, Record: true})
			if err != nil {
				t.Fatal(err)
			}
			keyset := make([]string, keys)
			for i := range keyset {
				keyset[i] = fmt.Sprintf("k-%06d", i)
				if err := front.Put(keyset[i], "0"); err != nil {
					t.Fatalf("preload: %v", err)
				}
			}
			vals := make([]string, 16)
			for i := range vals {
				vals[i] = fmt.Sprintf("v-%08d", i*i)
			}

			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(client int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed + int64(client)*7919))
					zipf := rand.NewZipf(rng, 1.1, 1, uint64(len(keyset)-1))
					var buf [kvstore.MaxVal]byte
					for i := 0; i < opsEach; i++ {
						key := keyset[zipf.Uint64()]
						if rng.Float64() < 0.5 {
							front.Get(key, buf[:])
						} else {
							if err := front.Put(key, vals[i%len(vals)]); err != nil {
								t.Errorf("client %d op %d: %v", client, i, err)
								return
							}
						}
					}
				}(c)
			}
			wg.Wait()

			merged := front.Stats()
			var sum deuce.Stats
			for i := 0; i < front.NumShards(); i++ {
				shardSt := front.ShardStats(i)

				mem, err := deuce.New(deuce.Options{Lines: front.ShardLines(), Scheme: scheme})
				if err != nil {
					t.Fatal(err)
				}
				kv := kvstore.New(mem)
				var buf [kvstore.MaxVal]byte
				for _, op := range front.Ops(i) {
					if op.Put {
						if err := kv.Put(op.Key, op.Value); err != nil {
							t.Fatalf("shard %d replay Put(%q): %v", i, op.Key, err)
						}
					} else {
						kv.GetInto(op.Key, buf[:])
					}
				}
				replaySt := mem.Stats()
				if replaySt.Writes != shardSt.Writes || replaySt.Reads != shardSt.Reads ||
					replaySt.BitFlips != shardSt.BitFlips || replaySt.WriteSlots != shardSt.WriteSlots {
					t.Fatalf("shard %d stats diverge from sequential replay:\n sharded: %+v\n  replay: %+v",
						i, shardSt, replaySt)
				}
				sum.Writes += replaySt.Writes
				sum.Reads += replaySt.Reads
				sum.BitFlips += replaySt.BitFlips
				sum.WriteSlots += replaySt.WriteSlots

				// Contents after stats: snapshotting reads every line.
				snap := front.SnapshotShard(i)
				line := make([]byte, 64)
				for l := range snap {
					mem.ReadInto(uint64(l), line)
					if !bytes.Equal(snap[l], line) {
						t.Fatalf("shard %d line %d contents diverge from sequential replay", i, l)
					}
				}
			}
			if merged.Writes != sum.Writes || merged.Reads != sum.Reads ||
				merged.BitFlips != sum.BitFlips || merged.WriteSlots != sum.WriteSlots {
				t.Fatalf("merged stats are not the exact sum of replays:\n merged: %+v\n    sum: %+v", merged, sum)
			}
		})
	}
}

// TestMergedStatsExact: the merged view recomputes its averages from the
// summed integer counters, and the integers are exactly the per-shard
// sums.
func TestMergedStatsExact(t *testing.T) {
	front, err := New(Config{Shards: 4, Lines: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := front.Put(fmt.Sprintf("k-%04d", i), fmt.Sprintf("%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	var buf [kvstore.MaxVal]byte
	for i := 0; i < 300; i++ {
		if _, ok := front.Get(fmt.Sprintf("k-%04d", i), buf[:]); !ok {
			t.Fatalf("lost key %d", i)
		}
	}
	merged := front.Stats()
	var writes, reads, flips, slots uint64
	for i := 0; i < front.NumShards(); i++ {
		st := front.ShardStats(i)
		writes += st.Writes
		reads += st.Reads
		flips += st.BitFlips
		slots += st.WriteSlots
	}
	if merged.Writes != writes || merged.Reads != reads || merged.BitFlips != flips || merged.WriteSlots != slots {
		t.Fatalf("merged integers diverge from shard sums: %+v", merged)
	}
	if want := float64(flips) / float64(writes); merged.AvgFlipsPerWrite != want {
		t.Fatalf("AvgFlipsPerWrite = %g, want %g", merged.AvgFlipsPerWrite, want)
	}
	if want := float64(slots) / float64(writes); merged.AvgWriteSlots != want {
		t.Fatalf("AvgWriteSlots = %g, want %g", merged.AvgWriteSlots, want)
	}
	if want := merged.AvgFlipsPerWrite / 512; merged.FlipFraction != want {
		t.Fatalf("FlipFraction = %g, want %g", merged.FlipFraction, want)
	}
}

// TestRoutingDecorrelatedFromSlots: shard routing must not correlate with
// in-region slot placement. Routing on the raw FNV hash would confine
// each region to the slot residues of its shard index whenever the shard
// count shares factors with the region size (both powers of two here),
// capping the reachable load factor at 1/Shards. With the avalanche mix,
// a 70% aggregate fill must succeed.
func TestRoutingDecorrelatedFromSlots(t *testing.T) {
	const (
		shards = 4
		lines  = 1024
		n      = 716 // ~70% of total capacity
	)
	front, err := New(Config{Shards: shards, Lines: lines})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := front.Put(fmt.Sprintf("fill-%05d", i), "x"); err != nil {
			t.Fatalf("Put %d of %d: %v", i, n, err)
		}
	}
	var buf [kvstore.MaxVal]byte
	for i := 0; i < n; i++ {
		if _, ok := front.Get(fmt.Sprintf("fill-%05d", i), buf[:]); !ok {
			t.Fatalf("lost key %d of %d", i, n)
		}
	}
}

// TestRegionStoreSuites reuses the shared kvstore probe suites at the
// sharded front end's per-region geometry, so region stores get the same
// wraparound and collision-chain coverage the full-size store has.
func TestRegionStoreSuites(t *testing.T) {
	const per = 128 // 1024 lines / 8 shards
	newRegion := func() *kvstore.Store {
		return kvstore.New(deuce.MustNew(deuce.Options{Lines: per, Scheme: deuce.DEUCE}))
	}
	t.Run("wraparound", func(t *testing.T) { kvtest.Wraparound(t, newRegion(), per) })
	t.Run("collision-heavy", func(t *testing.T) { kvtest.CollisionHeavy(t, newRegion(), per) })
}

// TestConcurrentHammer drives many goroutines through every shard with no
// recording — the configuration the serving benchmark uses — and checks
// nothing is lost. Run under -race by the race-timing lane.
func TestConcurrentHammer(t *testing.T) {
	front, err := New(Config{Shards: 8, Lines: 2048})
	if err != nil {
		t.Fatal(err)
	}
	const (
		clients = 16
		keys    = 256
	)
	keyset := make([]string, keys)
	for i := range keyset {
		keyset[i] = fmt.Sprintf("h-%04d", i)
		if err := front.Put(keyset[i], "0"); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(client)))
			var buf [kvstore.MaxVal]byte
			for i := 0; i < 500; i++ {
				key := keyset[rng.Intn(keys)]
				if rng.Intn(2) == 0 {
					if _, ok := front.Get(key, buf[:]); !ok {
						t.Errorf("client %d lost key %q", client, key)
						return
					}
				} else if err := front.Put(key, "v"); err != nil {
					t.Errorf("client %d: %v", client, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if st := front.Stats(); st.Writes == 0 || st.BitFlips == 0 {
		t.Fatalf("hammer recorded no write activity: %+v", st)
	}
}

// TestConfigValidation: line counts that do not split evenly are rejected.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Shards: 3, Lines: 1024}); err == nil {
		t.Error("uneven lines/shards accepted")
	}
	if _, err := New(Config{Scheme: "no-such-scheme", Shards: 2, Lines: 64}); err == nil {
		t.Error("unknown scheme accepted")
	}
}
