// Package stats provides the small statistical toolkit the experiment
// harness uses: streaming moments (Welford), histograms, and geometric
// means (the conventional aggregate for speedup figures).
//
// Concurrency: every accumulator is unlocked single-owner state — one
// goroutine feeds it, then reads it. The concurrency-safe counterparts
// for serving telemetry live in internal/obs/serve, not here.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Stream accumulates count, mean and variance in one pass (Welford's
// algorithm). The zero value is ready to use.
type Stream struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the stream.
func (s *Stream) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddN folds an observation with integer weight n.
func (s *Stream) AddN(x float64, n uint64) {
	for i := uint64(0); i < n; i++ {
		s.Add(x)
	}
}

// N returns the observation count.
func (s *Stream) N() uint64 { return s.n }

// Mean returns the running mean (0 for an empty stream).
func (s *Stream) Mean() float64 { return s.mean }

// Min returns the smallest observation (0 for an empty stream).
func (s *Stream) Min() float64 { return s.min }

// Max returns the largest observation (0 for an empty stream).
func (s *Stream) Max() float64 { return s.max }

// Variance returns the population variance.
func (s *Stream) Variance() float64 {
	if s.n == 0 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// StdDev returns the population standard deviation.
func (s *Stream) StdDev() float64 { return math.Sqrt(s.Variance()) }

// String implements fmt.Stringer for debugging output.
func (s *Stream) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g",
		s.n, s.Mean(), s.StdDev(), s.min, s.max)
}

// GeoMean returns the geometric mean of xs; it panics on non-positive
// inputs, which are always a bug for ratio metrics like speedup.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %v", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percentile returns the p-th percentile (0..100) of xs using
// nearest-rank on a sorted copy. It panics on an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of [0,100]", p))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p == 0 {
		return sorted[0]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Histogram counts observations into fixed-width bins over [lo, hi); values
// outside the range land in the saturating edge bins.
type Histogram struct {
	lo, hi float64
	bins   []uint64
	n      uint64
}

// NewHistogram creates a histogram with the given bin count over [lo, hi).
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: bins must be positive, got %d", bins)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: need lo < hi, got [%v,%v)", lo, hi)
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]uint64, bins)}, nil
}

// MustNewHistogram is NewHistogram for arguments known to be valid.
func MustNewHistogram(lo, hi float64, bins int) *Histogram {
	h, err := NewHistogram(lo, hi, bins)
	if err != nil {
		panic(err)
	}
	return h
}

// Add counts one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.bins)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.bins) {
		i = len(h.bins) - 1
	}
	h.bins[i]++
	h.n++
}

// N returns the total observation count.
func (h *Histogram) N() uint64 { return h.n }

// Bins returns a copy of the bin counts.
func (h *Histogram) Bins() []uint64 {
	out := make([]uint64, len(h.bins))
	copy(out, h.bins)
	return out
}

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.hi - h.lo) / float64(len(h.bins))
	return h.lo + w*(float64(i)+0.5)
}
