package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistogramEmpty(t *testing.T) {
	h := MustNewHistogram(0, 10, 4)
	if h.N() != 0 {
		t.Errorf("empty histogram N = %d, want 0", h.N())
	}
	for i, b := range h.Bins() {
		if b != 0 {
			t.Errorf("empty histogram bin %d = %d, want 0", i, b)
		}
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := MustNewHistogram(0, 10, 4)
	h.Add(2.5)
	bins := h.Bins()
	if h.N() != 1 || bins[1] != 1 {
		t.Errorf("single sample: N=%d bins=%v, want N=1 and bins[1]=1", h.N(), bins)
	}
	for i, b := range bins {
		if i != 1 && b != 0 {
			t.Errorf("single sample leaked into bin %d", i)
		}
	}
}

// A value exactly on the upper range bound lands in the saturating top bin,
// not one past it.
func TestHistogramUpperBound(t *testing.T) {
	h := MustNewHistogram(0, 10, 5)
	h.Add(10)
	if bins := h.Bins(); bins[4] != 1 {
		t.Errorf("Add(hi) bins = %v, want top bin to hold it", bins)
	}
}

func TestStreamSingleSample(t *testing.T) {
	var s Stream
	s.Add(7)
	if s.Min() != 7 || s.Max() != 7 || s.Mean() != 7 {
		t.Errorf("single sample min/mean/max = %v/%v/%v, want 7/7/7", s.Min(), s.Mean(), s.Max())
	}
	if s.Variance() != 0 || s.StdDev() != 0 {
		t.Errorf("single sample variance = %v, want 0", s.Variance())
	}
}

// AddN into a fresh stream must seed min/max from the weighted value, not
// from the zero value of the empty stream.
func TestStreamAddNMinMax(t *testing.T) {
	var s Stream
	s.AddN(5, 3)
	if s.Min() != 5 || s.Max() != 5 {
		t.Errorf("AddN-seeded min/max = %v/%v, want 5/5", s.Min(), s.Max())
	}
	s.AddN(-2, 1)
	s.AddN(9, 2)
	if s.Min() != -2 || s.Max() != 9 || s.N() != 6 {
		t.Errorf("min/max/n = %v/%v/%d, want -2/9/6", s.Min(), s.Max(), s.N())
	}
}

func TestStreamAddNZeroWeight(t *testing.T) {
	var s Stream
	s.AddN(42, 0)
	if s.N() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Errorf("zero-weight AddN changed the stream: %s", s.String())
	}
}

// Property: percentiles are monotone in p, bounded by min and max, and P50
// of the concatenation of a slice with itself equals P50 of the slice.
func TestPercentileMonotone(t *testing.T) {
	f := func(raw []uint16, pa, pb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		p1, p2 := float64(pa%101), float64(pb%101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		lo, hi := Percentile(xs, p1), Percentile(xs, p2)
		return lo <= hi &&
			Percentile(xs, 0) <= lo && hi <= Percentile(xs, 100)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: every percentile of a slice is a member of the slice
// (nearest-rank, not interpolated).
func TestPercentileIsMember(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(20)
		xs := make([]float64, n)
		member := map[float64]bool{}
		for i := range xs {
			xs[i] = float64(rng.Intn(50))
			member[xs[i]] = true
		}
		p := float64(rng.Intn(101))
		if v := Percentile(xs, p); !member[v] {
			t.Fatalf("P%v of %v = %v is not a member", p, xs, v)
		}
	}
}
