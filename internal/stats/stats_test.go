package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestStreamBasics(t *testing.T) {
	var s Stream
	for _, x := range []float64{1, 2, 3, 4} {
		s.Add(x)
	}
	if s.N() != 4 || !almost(s.Mean(), 2.5) {
		t.Errorf("mean = %v (n=%d), want 2.5 (4)", s.Mean(), s.N())
	}
	if !almost(s.Variance(), 1.25) {
		t.Errorf("variance = %v, want 1.25", s.Variance())
	}
	if s.Min() != 1 || s.Max() != 4 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestStreamEmpty(t *testing.T) {
	var s Stream
	if s.Mean() != 0 || s.Variance() != 0 || s.StdDev() != 0 {
		t.Error("empty stream moments should be 0")
	}
}

func TestStreamAddN(t *testing.T) {
	var a, b Stream
	a.AddN(3, 5)
	for i := 0; i < 5; i++ {
		b.Add(3)
	}
	if a.N() != b.N() || !almost(a.Mean(), b.Mean()) {
		t.Error("AddN disagrees with repeated Add")
	}
}

// Property: streaming mean matches the batch mean.
func TestStreamMatchesBatch(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Stream
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
			s.Add(xs[i])
		}
		return almost(s.Mean(), Mean(xs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); !almost(g, 2) {
		t.Errorf("GeoMean(1,4) = %v, want 2", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", g)
	}
	defer func() {
		if recover() == nil {
			t.Error("GeoMean of non-positive did not panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if p := Percentile(xs, 50); p != 3 {
		t.Errorf("P50 = %v, want 3", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Errorf("P100 = %v, want 5", p)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Errorf("P0 = %v, want 1", p)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("Percentile sorted its input in place")
	}
}

func TestPercentilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty Percentile did not panic")
		}
	}()
	Percentile(nil, 50)
}

func TestHistogram(t *testing.T) {
	h := MustNewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.9, -3, 42} {
		h.Add(x)
	}
	bins := h.Bins()
	// -3 saturates into bin 0; 42 into bin 4.
	want := []uint64{3, 1, 1, 0, 2}
	for i := range want {
		if bins[i] != want[i] {
			t.Fatalf("bins = %v, want %v", bins, want)
		}
	}
	if h.N() != 7 {
		t.Errorf("N = %d, want 7", h.N())
	}
	if !almost(h.BinCenter(0), 1) {
		t.Errorf("BinCenter(0) = %v, want 1", h.BinCenter(0))
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("accepted zero bins")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("accepted empty range")
	}
}

func TestStreamLargeN(t *testing.T) {
	var s Stream
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		s.Add(rng.Float64())
	}
	if math.Abs(s.Mean()-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", s.Mean())
	}
	if math.Abs(s.StdDev()-math.Sqrt(1.0/12)) > 0.01 {
		t.Errorf("uniform sd = %v, want ~0.289", s.StdDev())
	}
}
