package timing

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"deuce/internal/trace"
)

// ErrSharedLine reports a violation of the sharded engine's determinism
// contract: a writeback stream in which the same line is written by more
// than one core. The sharded engine costs writebacks in trace order, per
// line, ahead of simulated time; that is only equal to the sequential
// engine's issue-order costing when each line's writebacks come from a
// single core (whose issue order is its trace order). The workload
// generator guarantees this by construction (per-core private working
// sets); arbitrary recorded traces may not, and must use the sequential
// Simulator instead.
var ErrSharedLine = errors.New("timing: sharded engine requires single-writer lines")

// errPipelineDone terminates the inner Simulator's event stream. The
// sequential engine treats every source error as end-of-trace, so io.EOF
// keeps the two engines' semantics aligned; pipeline failures
// (ErrSharedLine) surface from Sharded.Run itself, never through the
// source.
var errPipelineDone = io.EOF

// ShardedConfig sizes the sharded engine's pipeline. The zero value
// selects sensible defaults; results are bit-identical for every setting.
type ShardedConfig struct {
	// EpochEvents is the number of trace events per pipeline epoch;
	// 0 means 1024. Smaller epochs lower the memory held in flight and
	// the cost of a mid-stream shutdown; larger epochs amortize barrier
	// overhead.
	EpochEvents int
	// Depth is the number of epochs in flight between the draw stage and
	// the simulation stage; 0 means 4. It bounds how far the costing
	// shards may run ahead of simulated time.
	Depth int
}

func (sc *ShardedConfig) setDefaults() {
	if sc.EpochEvents == 0 {
		sc.EpochEvents = 1024
	}
	if sc.Depth == 0 {
		sc.Depth = 4
	}
}

// ShardStats describes one completed sharded run; see Sharded.Stats.
type ShardStats struct {
	// Shards is the number of costing shards the run used.
	Shards int
	// Epochs is the number of pipeline epochs dispatched.
	Epochs int
	// Events is the number of trace events drawn from the source.
	Events uint64
	// CostedWritebacks[i] is the number of writebacks shard i evaluated.
	// The sum can exceed the writebacks the Simulator issued: costing
	// runs ahead of simulated time, so a maxEvents cutoff can leave a
	// costed tail the simulation never consumed.
	CostedWritebacks []uint64
	// BarrierStallNs is simulated-run wall time the simulation stage
	// spent waiting on epoch barriers — non-zero means the costing
	// shards, not the event loop, were the bottleneck.
	BarrierStallNs int64
	// CostingNs[i] is wall-clock time shard i spent inside epoch bodies,
	// costing its writebacks and applying deferred ops. On an unloaded
	// host the largest entry bounds the costing stage's contribution to
	// run wall clock; the sum is the costing work the pipeline moved off
	// the event loop.
	CostingNs []int64
}

// Sharded is the parallel counterpart of Simulator: the identical
// event-driven machine model, with the expensive per-writeback slot
// costing sharded across goroutines by bank and pipelined against both
// the trace draw and the event loop.
//
// The engine produces a Result bit-identical to the sequential Simulator
// for every configuration and shard count. The event loop itself — cores,
// banks, the global current budget — is deliberately NOT sharded: posted
// writebacks and current-budget hand-off couple banks at zero simulated-
// time distance, so no conservative lookahead window can reorder them
// without changing results (see DESIGN.md §9 for the full argument).
// What is sharded is everything whose order across banks provably cannot
// matter: per-line coster state, partitioned by the same line→bank map
// the machine uses.
//
// Construction is cheap; Run spawns len(costers)+1 goroutines (the
// costing shards and the draw stage) for the duration of the run and
// joins them before returning. A Sharded is single-use: Run may be
// called once.
type Sharded struct {
	cfg    Config
	sc     ShardedConfig
	rawSrc trace.Source
	shards []*shard
	sim    *Simulator
	src    *epochSource

	ready chan *epoch
	done  chan struct{}

	// Draw-goroutine state.
	cur    *epoch
	owner  map[uint64]int // line → issuing core, for the ErrSharedLine guard
	epochs int
	events uint64

	pipeErr error
	started bool
	stats   ShardStats
}

// NewSharded builds a sharded simulator over a trace source.
//
// costers[i] evaluates the writebacks of every bank b with
// b % len(costers) == i (banks are line % cfg.Banks, as in the sequential
// engine). Each coster is called from a single dedicated goroutine, so
// per-coster state needs no synchronization — but distinct costers run
// concurrently, so they must not share mutable state with each other.
// Bit-identical results additionally require each coster's per-line
// answers to be independent of other lines' writebacks (the determinism
// contract, DESIGN.md §9); the experiment harness enforces this via
// core.LineSeparable.
func NewSharded(cfg Config, src trace.Source, costers []SlotCoster, sc ShardedConfig) (*Sharded, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("timing: nil source")
	}
	if len(costers) < 1 {
		return nil, fmt.Errorf("timing: sharded engine needs at least one coster")
	}
	if len(costers) > cfg.Banks {
		return nil, fmt.Errorf("timing: %d costing shards exceed %d banks", len(costers), cfg.Banks)
	}
	for i, c := range costers {
		if c == nil {
			return nil, fmt.Errorf("timing: nil coster for shard %d", i)
		}
	}
	sc.setDefaults()
	if sc.EpochEvents < 1 || sc.Depth < 1 {
		return nil, fmt.Errorf("timing: non-positive epoch size or depth in %+v", sc)
	}
	e := &Sharded{
		cfg:    cfg,
		sc:     sc,
		rawSrc: src,
		ready:  make(chan *epoch, sc.Depth),
		done:   make(chan struct{}),
		owner:  make(map[uint64]int, 1024),
	}
	for i := range costers {
		e.shards = append(e.shards, &shard{
			id:     i,
			shards: len(costers),
			banks:  cfg.Banks,
			coster: costers[i],
			in:     make(chan *epoch, sc.Depth),
		})
	}
	e.src = &epochSource{ready: e.ready, fifo: make(map[uint64][]int, 1024)}
	sim, err := NewSimulator(cfg, e.src, fifoCoster{src: e.src})
	if err != nil {
		return nil, err
	}
	e.sim = sim
	return e, nil
}

// ShardOf returns the index of the costing shard that owns line. Callers
// that keep per-line side state (scheme instances, install routing) must
// partition it with this same map to match the engine's ownership.
func (e *Sharded) ShardOf(line uint64) int {
	return int(line%uint64(e.cfg.Banks)) % len(e.shards)
}

// Defer schedules fn to run on the goroutine of the shard owning line,
// ordered before the costing of the event currently being drawn. It
// exists for lazily-materialized per-line state: a workload generator's
// first-touch install hook fires while the engine draws the line's first
// writeback, and Defer routes the install to the owning shard so it is
// applied before that writeback is costed — the same install-before-
// first-write order the sequential engine produces.
//
// Defer must only be called from within the source's Next method (i.e.
// from hooks that fire while the engine draws); calling it from anywhere
// else panics.
func (e *Sharded) Defer(line uint64, fn func()) {
	ep := e.cur
	if ep == nil {
		panic("timing: Sharded.Defer called outside a source draw")
	}
	ep.ops = append(ep.ops, shardOp{pos: len(ep.events), shard: e.ShardOf(line), fn: fn})
}

// Run simulates until maxEvents trace events have been issued (or the
// source ends) and returns the same Result the sequential Simulator
// would. It spawns the pipeline goroutines, runs the event loop on the
// calling goroutine, and joins everything before returning.
func (e *Sharded) Run(maxEvents int) (Result, error) {
	if maxEvents <= 0 {
		return Result{}, fmt.Errorf("timing: maxEvents must be positive, got %d", maxEvents)
	}
	if e.started {
		return Result{}, fmt.Errorf("timing: Sharded.Run called twice")
	}
	e.started = true

	var join sync.WaitGroup
	for _, sh := range e.shards {
		join.Add(1)
		go sh.loop(join.Done)
	}
	drawDone := make(chan struct{})
	go func() {
		defer close(drawDone)
		e.drawLoop()
	}()

	res, err := e.sim.Run(maxEvents)

	// Unblock the draw stage if the event loop stopped early (maxEvents),
	// then join the pipeline. Shards drain any epochs still buffered on
	// their channels — bounded by Depth — before exiting.
	close(e.done)
	<-drawDone
	join.Wait()

	e.stats = ShardStats{
		Shards:           len(e.shards),
		Epochs:           e.epochs,
		Events:           e.events,
		CostedWritebacks: make([]uint64, len(e.shards)),
		BarrierStallNs:   e.src.stallNs,
		CostingNs:        make([]int64, len(e.shards)),
	}
	for i, sh := range e.shards {
		e.stats.CostedWritebacks[i] = sh.costed
		e.stats.CostingNs[i] = sh.costNs
	}
	if e.pipeErr != nil {
		return Result{}, e.pipeErr
	}
	return res, err
}

// Stats reports pipeline behavior for the completed run. Valid only
// after Run has returned.
func (e *Sharded) Stats() ShardStats { return e.stats }

// drawLoop is the draw-stage goroutine: it pulls events from the raw
// source into epochs, enforces the single-writer-line contract, and
// dispatches each filled epoch to every shard and then to the simulation
// stage. It owns e.cur, e.owner, e.epochs and e.events exclusively.
func (e *Sharded) drawLoop() {
	defer func() {
		for _, sh := range e.shards {
			close(sh.in)
		}
		close(e.ready)
	}()
	for {
		ep := &epoch{
			events: make([]trace.Event, 0, e.sc.EpochEvents),
			costs:  make([]int, e.sc.EpochEvents),
		}
		e.cur = ep
		srcDone := false
		for len(ep.events) < e.sc.EpochEvents {
			ev, err := e.rawSrc.Next()
			if err != nil {
				// Any source error ends the stream, exactly as the
				// sequential engine's pull does.
				srcDone = true
				break
			}
			if ev.Kind == trace.Writeback {
				c := int(ev.CPU) % e.cfg.Cores
				if prev, ok := e.owner[ev.Line]; !ok {
					e.owner[ev.Line] = c
				} else if prev != c {
					e.pipeErr = fmt.Errorf("%w: line %d written by core %d after core %d",
						ErrSharedLine, ev.Line, c, prev)
					return
				}
			}
			ep.events = append(ep.events, ev)
			e.events++
		}
		ep.costs = ep.costs[:len(ep.events)]
		if len(ep.events) == 0 && len(ep.ops) == 0 {
			return
		}
		e.epochs++
		ep.wg.Add(len(e.shards))
		for _, sh := range e.shards {
			select {
			case sh.in <- ep:
			case <-e.done:
				return
			}
		}
		select {
		case e.ready <- ep:
		case <-e.done:
			return
		}
		if srcDone {
			return
		}
	}
}
