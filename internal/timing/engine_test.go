package timing

import (
	"errors"
	"fmt"
	"io"
	"math/bits"
	"math/rand"
	"testing"

	"deuce/internal/trace"
)

// diffCoster is a stateful per-line SlotCoster: slot cost is the Hamming
// distance to the line's previous content, mimicking how the experiment
// harness derives costs from per-line scheme state. Shardability requires
// exactly the property this models: the answer for a line depends only on
// that line's own write history.
type diffCoster struct {
	last map[uint64][]byte
}

func newDiffCoster() *diffCoster { return &diffCoster{last: make(map[uint64][]byte)} }

func (d *diffCoster) WriteSlots(line uint64, data []byte) int {
	prev := d.last[line]
	n := 0
	for i := range data {
		var p byte
		if prev != nil {
			p = prev[i]
		}
		n += bits.OnesCount8(p ^ data[i])
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	d.last[line] = cp
	return n / 8
}

// genTrace builds a deterministic pseudo-random trace obeying the sharded
// engine's contract: each line is written by exactly one CPU (per-CPU
// disjoint line regions, like the workload generator), reads may alias.
func genTrace(seed int64, cpus, linesPerCPU, n int) []trace.Event {
	rng := rand.New(rand.NewSource(seed))
	evs := make([]trace.Event, 0, n)
	for i := 0; i < n; i++ {
		cpu := uint8(i % cpus)
		line := uint64(cpu)*uint64(linesPerCPU) + uint64(rng.Intn(linesPerCPU))
		gap := uint32(rng.Intn(400))
		if rng.Intn(3) == 0 {
			evs = append(evs, trace.Event{Kind: trace.Read, Line: line, CPU: cpu, Gap: gap})
		} else {
			data := make([]byte, 64)
			rng.Read(data)
			evs = append(evs, trace.Event{Kind: trace.Writeback, Line: line, CPU: cpu, Gap: gap, Data: data})
		}
	}
	return evs
}

// runSeq runs the reference sequential engine over evs.
func runSeq(t *testing.T, cfg Config, evs []trace.Event, maxEvents int) Result {
	t.Helper()
	s, err := NewSimulator(cfg, &sliceSource{events: evs}, newDiffCoster())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(maxEvents)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// runSharded runs the sharded engine with nshards independent costers.
func runSharded(t *testing.T, cfg Config, sc ShardedConfig, nshards int, evs []trace.Event, maxEvents int) (Result, ShardStats) {
	t.Helper()
	costers := make([]SlotCoster, nshards)
	for i := range costers {
		costers[i] = newDiffCoster()
	}
	e, err := NewSharded(cfg, &sliceSource{events: evs}, costers, sc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(maxEvents)
	if err != nil {
		t.Fatal(err)
	}
	return res, e.Stats()
}

// TestShardedDifferential is the core determinism suite: the sharded
// engine must produce a bit-identical Result to the sequential engine
// across seeds × cores × banks × shard counts × WritePausing.
func TestShardedDifferential(t *testing.T) {
	const nEvents = 4000
	for _, seed := range []int64{1, 2, 3} {
		for _, cpus := range []int{1, 4} {
			evs := genTrace(seed, cpus, 64, nEvents)
			for _, banks := range []int{1, 4, 32} {
				for _, pausing := range []bool{false, true} {
					cfg := Config{Cores: cpus, Banks: banks, WritePausing: pausing}
					want := runSeq(t, cfg, evs, nEvents)
					for _, shards := range []int{1, 2, 3, 8} {
						if shards > banks {
							continue
						}
						name := fmt.Sprintf("seed=%d cpus=%d banks=%d pause=%t shards=%d",
							seed, cpus, banks, pausing, shards)
						got, _ := runSharded(t, cfg, ShardedConfig{}, shards, evs, nEvents)
						if got != want {
							t.Errorf("%s: sharded %+v != sequential %+v", name, got, want)
						}
					}
				}
			}
		}
	}
}

// TestShardedEpochGeometry varies pipeline sizing: epoch size and depth
// must never change the Result, including the degenerate 1-event epoch.
func TestShardedEpochGeometry(t *testing.T) {
	evs := genTrace(7, 4, 32, 2500)
	cfg := Config{Cores: 4, Banks: 16, WritePausing: true}
	want := runSeq(t, cfg, evs, len(evs))
	for _, epoch := range []int{1, 7, 256, 4096} {
		for _, depth := range []int{1, 8} {
			got, _ := runSharded(t, cfg, ShardedConfig{EpochEvents: epoch, Depth: depth}, 4, evs, len(evs))
			if got != want {
				t.Errorf("epoch=%d depth=%d: %+v != %+v", epoch, depth, got, want)
			}
		}
	}
}

// TestShardedMaxEventsTruncation stops the simulation mid-stream; the
// sharded pipeline runs ahead of the event loop, so the cutoff exercises
// the shutdown path (costed-but-unissued tail, draw-stage unblock).
func TestShardedMaxEventsTruncation(t *testing.T) {
	evs := genTrace(11, 4, 32, 3000)
	cfg := Config{Cores: 4, Banks: 8}
	for _, maxEvents := range []int{1, 10, 999, 2999, 3000, 3001, 1 << 30} {
		want := runSeq(t, cfg, evs, maxEvents)
		got, _ := runSharded(t, cfg, ShardedConfig{EpochEvents: 64}, 4, evs, maxEvents)
		if got != want {
			t.Errorf("maxEvents=%d: %+v != %+v", maxEvents, got, want)
		}
	}
}

// TestShardedSharedReadLines verifies the single-writer guard ignores
// reads: a line read by every core but written by one is legal.
func TestShardedSharedReadLines(t *testing.T) {
	evs := []trace.Event{
		wb(5, 0, 100),
		rd(5, 1, 100),
		rd(5, 2, 100),
		wb(5, 0, 100),
		rd(5, 3, 100),
	}
	cfg := Config{Cores: 4, Banks: 4}
	want := runSeq(t, cfg, evs, len(evs))
	got, _ := runSharded(t, cfg, ShardedConfig{}, 2, evs, len(evs))
	if got != want {
		t.Errorf("shared-read line: %+v != %+v", got, want)
	}
}

// TestShardedSharedWriteRejected: a line written from two distinct cores
// violates the determinism contract and must fail with ErrSharedLine.
func TestShardedSharedWriteRejected(t *testing.T) {
	evs := []trace.Event{wb(5, 0, 100), wb(5, 1, 100)}
	e, err := NewSharded(Config{Cores: 4, Banks: 4}, &sliceSource{events: evs},
		[]SlotCoster{newDiffCoster(), newDiffCoster()}, ShardedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(len(evs)); !errors.Is(err, ErrSharedLine) {
		t.Errorf("got %v, want ErrSharedLine", err)
	}
}

// TestShardedSharedWriteSameCore: distinct CPUs that fold onto the same
// core (CPU % Cores) are a single writer and must be accepted.
func TestShardedSharedWriteSameCore(t *testing.T) {
	evs := []trace.Event{wb(5, 0, 100), wb(5, 2, 100)}
	cfg := Config{Cores: 2, Banks: 4}
	want := runSeq(t, cfg, evs, len(evs))
	got, _ := runSharded(t, cfg, ShardedConfig{}, 2, evs, len(evs))
	if got != want {
		t.Errorf("same-core aliased writers: %+v != %+v", got, want)
	}
}

// installSource simulates the experiment harness's lazy first-touch line
// materialization: the first writeback of a line triggers an install that
// must be applied to the owning shard's coster before that writeback is
// costed. With eng == nil (sequential reference) installs apply inline.
type installSource struct {
	evs       []trace.Event
	i         int
	eng       *Sharded
	installed map[uint64]bool
	install   func(line uint64)
}

func (s *installSource) Next() (trace.Event, error) {
	if s.i >= len(s.evs) {
		return trace.Event{}, io.EOF
	}
	ev := s.evs[s.i]
	s.i++
	if ev.Kind == trace.Writeback && !s.installed[ev.Line] {
		s.installed[ev.Line] = true
		line := ev.Line
		if s.eng != nil {
			s.eng.Defer(line, func() { s.install(line) })
		} else {
			s.install(line)
		}
	}
	return ev, nil
}

// installCoster charges a penalty for lines that were not installed
// before their first write, making any install/write reorder visible in
// the Result.
type installCoster struct {
	ready map[uint64]bool
}

func (c *installCoster) WriteSlots(line uint64, _ []byte) int {
	if c.ready[line] {
		return 2
	}
	return 500
}

// TestShardedDeferInstallOrder pins Defer's ordering guarantee: installs
// land on the owning shard before the triggering writeback is costed, so
// results match the sequential engine's inline-install behavior.
func TestShardedDeferInstallOrder(t *testing.T) {
	const banks, shards = 8, 3
	evs := genTrace(13, 2, 48, 2000)
	cfg := Config{Cores: 2, Banks: banks}

	seqCoster := &installCoster{ready: make(map[uint64]bool)}
	seqSrc := &installSource{
		evs:       evs,
		installed: make(map[uint64]bool),
		install:   func(line uint64) { seqCoster.ready[line] = true },
	}
	seq, err := NewSimulator(cfg, seqSrc, seqCoster)
	if err != nil {
		t.Fatal(err)
	}
	want, err := seq.Run(len(evs))
	if err != nil {
		t.Fatal(err)
	}

	costers := make([]SlotCoster, shards)
	for i := range costers {
		costers[i] = &installCoster{ready: make(map[uint64]bool)}
	}
	parSrc := &installSource{
		evs:       evs,
		installed: make(map[uint64]bool),
		// Routed through Defer, the closure runs on the goroutine of the
		// shard owning line, which is also the only goroutine reading
		// that line's ready entry.
		install: func(line uint64) {
			costers[int(line%banks)%shards].(*installCoster).ready[line] = true
		},
	}
	e, err := NewSharded(cfg, parSrc, costers, ShardedConfig{EpochEvents: 16})
	if err != nil {
		t.Fatal(err)
	}
	parSrc.eng = e
	got, err := e.Run(len(evs))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("deferred installs: %+v != %+v", got, want)
	}
	if got.SlotsIssued > want.Reads+want.Writes*2 {
		t.Errorf("install penalty leaked into costs: SlotsIssued=%d", got.SlotsIssued)
	}
}

func TestShardedValidation(t *testing.T) {
	src := &sliceSource{}
	ok := []SlotCoster{fixedSlots(1)}
	if _, err := NewSharded(Config{Banks: 4}, src, nil, ShardedConfig{}); err == nil {
		t.Error("empty coster slice accepted")
	}
	if _, err := NewSharded(Config{Banks: 4}, src, []SlotCoster{nil}, ShardedConfig{}); err == nil {
		t.Error("nil coster accepted")
	}
	if _, err := NewSharded(Config{Banks: 2}, src, []SlotCoster{fixedSlots(1), fixedSlots(1), fixedSlots(1)}, ShardedConfig{}); err == nil {
		t.Error("shards > banks accepted")
	}
	if _, err := NewSharded(Config{}, nil, ok, ShardedConfig{}); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := NewSharded(Config{Cores: -1}, src, ok, ShardedConfig{}); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := NewSharded(Config{}, src, ok, ShardedConfig{EpochEvents: -1}); err == nil {
		t.Error("negative epoch size accepted")
	}
	e, err := NewSharded(Config{}, src, ok, ShardedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(0); err == nil {
		t.Error("zero maxEvents accepted")
	}
	if _, err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(10); err == nil {
		t.Error("second Run accepted")
	}
}

func TestShardedDeferOutsideDrawPanics(t *testing.T) {
	e, err := NewSharded(Config{}, &sliceSource{}, []SlotCoster{fixedSlots(1)}, ShardedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Defer outside a draw did not panic")
		}
	}()
	e.Defer(0, func() {})
}

// TestShardedStats sanity-checks the pipeline accounting: every drawn
// event is counted, every issued writeback was costed by exactly the
// owning shard, and shard coverage partitions the writebacks.
func TestShardedStats(t *testing.T) {
	evs := genTrace(17, 4, 32, 3000)
	cfg := Config{Cores: 4, Banks: 8}
	res, st := runSharded(t, cfg, ShardedConfig{EpochEvents: 128}, 4, evs, len(evs))
	if st.Shards != 4 {
		t.Errorf("Shards = %d, want 4", st.Shards)
	}
	if st.Events != uint64(len(evs)) {
		t.Errorf("Events = %d, want %d", st.Events, len(evs))
	}
	wantEpochs := (len(evs) + 127) / 128
	if st.Epochs != wantEpochs {
		t.Errorf("Epochs = %d, want %d", st.Epochs, wantEpochs)
	}
	var costed uint64
	for _, c := range st.CostedWritebacks {
		costed += c
	}
	if costed != res.Writes {
		t.Errorf("costed %d writebacks, simulator issued %d", costed, res.Writes)
	}
	if st.BarrierStallNs < 0 {
		t.Errorf("negative BarrierStallNs %d", st.BarrierStallNs)
	}
}
