package timing

import (
	"sync"
	"time"

	"deuce/internal/trace"
)

// epoch is one batch of the event stream flowing through the sharded
// engine's pipeline. The draw stage fills it from the trace source, every
// costing shard scans it (writing slot costs only at the indices of the
// writebacks it owns, so the writes are disjoint), and the simulation
// stage consumes it after the epoch's barrier — wg — reports that all
// shards are done with it.
//
// Happens-before: the draw goroutine publishes an epoch by sending it on
// the shard and ready channels; shards publish their cost writes through
// wg.Done; the simulation goroutine reads costs only after wg.Wait. No
// field is accessed concurrently outside that protocol.
type epoch struct {
	// events are the drawn trace events, in draw order.
	events []trace.Event
	// costs[i] is the slot cost of events[i] if it is a writeback
	// (filled in by the owning shard); untouched for reads.
	costs []int
	// ops are shard-local preamble operations (lazy line installs —
	// see Sharded.Defer), ordered by the event index they must precede.
	ops []shardOp
	// wg is the epoch barrier: one Done per shard.
	wg sync.WaitGroup
}

// shardOp is a deferred operation delivered to the shard owning a line,
// executed before the epoch's event at index pos is costed. The engine
// uses it to route lazily-materialized line state (first-touch installs)
// to the goroutine that owns the line, preserving the install-before-
// first-write order of the sequential engine.
type shardOp struct {
	pos   int
	shard int
	fn    func()
}

// epochSource adapts the draw stage's costed epochs back into a
// trace.Source for the inner sequential Simulator. It runs entirely on
// the simulation goroutine.
//
// As events are handed to the Simulator, each writeback's precomputed
// cost is pushed onto its line's FIFO; the paired fifoCoster pops it when
// the Simulator issues the writeback. The per-line FIFO is what makes the
// cost hand-off independent of issue order: the Simulator issues a line's
// writebacks in draw order (the determinism contract), but interleaves
// lines according to simulated timing, which the FIFO absorbs.
type epochSource struct {
	ready <-chan *epoch
	cur   *epoch
	idx   int
	fifo  map[uint64][]int

	// stallNs accumulates simulation time spent blocked on epoch
	// barriers — the pipeline's "shards are behind" signal.
	stallNs int64
	epochs  int
	events  uint64
}

// Next implements trace.Source over the costed epoch stream.
func (s *epochSource) Next() (trace.Event, error) {
	for s.cur == nil || s.idx >= len(s.cur.events) {
		ep, ok := <-s.ready
		if !ok {
			return trace.Event{}, errPipelineDone
		}
		t0 := time.Now()
		ep.wg.Wait()
		s.stallNs += time.Since(t0).Nanoseconds()
		s.cur, s.idx = ep, 0
		s.epochs++
	}
	ev := s.cur.events[s.idx]
	if ev.Kind == trace.Writeback {
		s.fifo[ev.Line] = append(s.fifo[ev.Line], s.cur.costs[s.idx])
	}
	s.idx++
	s.events++
	return ev, nil
}

// fifoCoster satisfies the inner Simulator's SlotCoster by popping the
// cost precomputed by the owning shard. It runs on the simulation
// goroutine only.
type fifoCoster struct {
	src *epochSource
}

// WriteSlots implements SlotCoster from the per-line cost FIFO.
func (c fifoCoster) WriteSlots(line uint64, _ []byte) int {
	q := c.src.fifo[line]
	if len(q) == 0 {
		// The Simulator only issues events it pulled, and every pulled
		// writeback pushed its cost; an empty queue means engine
		// corruption, not a caller error.
		panic("timing: sharded engine cost underflow — writeback issued with no precomputed cost")
	}
	cost := q[0]
	c.src.fifo[line] = q[1:]
	return cost
}
