package timing

import (
	"time"

	"deuce/internal/trace"
)

// shard is one costing worker of the sharded engine. It owns the banks b
// of the machine with b % shards == id, and with them every cache line
// that maps to those banks: the shard's SlotCoster is the only goroutine
// that ever evaluates those lines' writebacks, so per-line coster state
// needs no locking.
//
// A shard consumes epochs in draw order from its channel and, for each,
// walks the full event slice costing only the writebacks it owns. Cost
// writes land at disjoint indices across shards (bank ownership is a
// partition), so the epoch's cost slice is written race-free. Deferred
// ops (lazy installs) interleave positionally: an op scheduled before
// event i runs before event i is costed, preserving the sequential
// engine's install-before-first-write order for every line.
type shard struct {
	id     int
	shards int
	banks  int
	coster SlotCoster
	in     chan *epoch

	// costed counts writebacks this shard evaluated; read by the engine
	// only after the shard goroutine has been joined.
	costed uint64
	// costNs accumulates wall-clock time spent inside epoch bodies
	// (costing writebacks and applying deferred ops); like costed it is
	// read only after the goroutine has been joined.
	costNs int64
}

// owns reports whether the shard owns the bank of the given line.
func (sh *shard) owns(line uint64) bool {
	return int(line%uint64(sh.banks))%sh.shards == sh.id
}

// loop is the shard goroutine body: cost epochs until the draw stage
// closes the channel.
func (sh *shard) loop(join func()) {
	defer join()
	for ep := range sh.in {
		t0 := time.Now()
		oi := 0
		for i := range ep.events {
			for oi < len(ep.ops) && ep.ops[oi].pos <= i {
				if ep.ops[oi].shard == sh.id {
					ep.ops[oi].fn()
				}
				oi++
			}
			ev := &ep.events[i]
			if ev.Kind == trace.Writeback && sh.owns(ev.Line) {
				ep.costs[i] = sh.coster.WriteSlots(ev.Line, ev.Data)
				sh.costed++
			}
		}
		// Ops appended while drawing the event that ended the epoch
		// (or after the last drawn event) trail the event slice.
		for ; oi < len(ep.ops); oi++ {
			if ep.ops[oi].shard == sh.id {
				ep.ops[oi].fn()
			}
		}
		sh.costNs += time.Since(t0).Nanoseconds()
		ep.wg.Done()
	}
}
