// Package timing is an event-driven performance model of a multi-core
// system with a PCM main memory, reproducing the mechanism behind the
// paper's Figures 15-17: writes occupy a bank for one or more 128-bit write
// slots (150 ns each, §6.1 / Table 1), a global current budget caps how
// many slots may program simultaneously (ref [22]), reads (75 ns) have
// priority over writes but cannot preempt a slot in flight, and cores stall
// on read misses. Fewer bit flips → fewer slots per write → banks and the
// current budget free up → reads wait less → the cores run faster.
//
// The model deliberately keeps the core side simple (in-order issue at a
// fixed IPC between memory events, full stall on L4 read misses, posted
// writebacks with finite write buffering): the paper's speedups are memory
// effects, and this is the minimal machine that exhibits them.
//
// Concurrency: the sequential engine is single-owner state driven by one
// goroutine. The sharded engine partitions lines across shards that each
// run the sequential algorithm on their own goroutine; a line belongs to
// exactly one shard, enforced by ErrSharedLine, and the merge of shard
// timelines is deterministic — sharded and sequential runs are
// bit-identical by contract (DESIGN.md §9, pinned by the differential
// suite in this package).
package timing

import (
	"container/heap"
	"fmt"
	"io"

	"deuce/internal/trace"
)

// Config describes the simulated machine (defaults follow Table 1).
type Config struct {
	// Cores is the number of CPU cores; 0 means 8.
	Cores int
	// IPC is each core's instruction throughput between memory events;
	// 0 means 4 (4-wide issue).
	IPC float64
	// ClockGHz is the core clock; 0 means 4.
	ClockGHz float64
	// ReadLatencyNs is the PCM array read latency; 0 means 75.
	ReadLatencyNs float64
	// SlotLatencyNs is the latency of one 128-bit write slot; 0 means 150.
	SlotLatencyNs float64
	// Banks is the number of independently-schedulable PCM banks;
	// 0 means 32 (4 ranks x 8 banks).
	Banks int
	// MaxConcurrentSlots is the global write-current budget expressed in
	// simultaneously-programming slots; 0 means 16.
	MaxConcurrentSlots int
	// WriteBufferSlots is the per-bank write backlog limit in slots;
	// a core posting a write to a full bank stalls. 0 means 32.
	WriteBufferSlots int
	// WritePausing lets an arriving read cancel a write slot in flight
	// at its bank (write cancellation/pausing, paper ref [6]): the read
	// starts immediately and the cancelled slot restarts from scratch
	// later. Off by default, matching the paper's baseline.
	WritePausing bool
}

func (c *Config) setDefaults() {
	if c.Cores == 0 {
		c.Cores = 8
	}
	if c.IPC == 0 {
		c.IPC = 4
	}
	if c.ClockGHz == 0 {
		c.ClockGHz = 4
	}
	if c.ReadLatencyNs == 0 {
		c.ReadLatencyNs = 75
	}
	if c.SlotLatencyNs == 0 {
		c.SlotLatencyNs = 150
	}
	if c.Banks == 0 {
		c.Banks = 32
	}
	if c.MaxConcurrentSlots == 0 {
		c.MaxConcurrentSlots = 16
	}
	if c.WriteBufferSlots == 0 {
		c.WriteBufferSlots = 32
	}
}

func (c Config) validate() error {
	if c.Cores < 1 || c.Banks < 1 || c.MaxConcurrentSlots < 1 || c.WriteBufferSlots < 1 {
		return fmt.Errorf("timing: non-positive machine dimension in %+v", c)
	}
	if c.IPC <= 0 || c.ClockGHz <= 0 || c.ReadLatencyNs <= 0 || c.SlotLatencyNs <= 0 {
		return fmt.Errorf("timing: non-positive rate or latency in %+v", c)
	}
	return nil
}

// Result summarizes one timing run.
type Result struct {
	// ExecNs is the simulated execution time in nanoseconds.
	ExecNs float64
	// Instructions is the total instruction count across cores.
	Instructions uint64
	// Reads and Writes are the serviced request counts.
	Reads, Writes uint64
	// SlotsIssued is the total write slots programmed.
	SlotsIssued uint64
	// AvgReadLatencyNs is the mean read miss service latency including
	// queueing.
	AvgReadLatencyNs float64
	// WriteStallNs is the total core time lost to write-buffer
	// backpressure.
	WriteStallNs float64
	// PausedSlots counts write slots cancelled by arriving reads
	// (non-zero only with Config.WritePausing).
	PausedSlots uint64
}

// IPCAggregate returns instructions per nanosecond over the whole run.
func (r Result) IPCAggregate() float64 {
	if r.ExecNs == 0 {
		return 0
	}
	return float64(r.Instructions) / r.ExecNs
}

// SlotCoster maps a writeback to the number of write slots it needs. The
// experiment harness implements this by running the writeback through a
// core.Scheme against the PCM device and reporting the device cost.
type SlotCoster interface {
	// WriteSlots applies the writeback and returns its slot count
	// (0 slots means nothing changed; the controller still dequeues it).
	WriteSlots(line uint64, data []byte) int
}

// SlotCosterFunc adapts a function to the SlotCoster interface.
type SlotCosterFunc func(line uint64, data []byte) int

// WriteSlots implements SlotCoster.
func (f SlotCosterFunc) WriteSlots(line uint64, data []byte) int { return f(line, data) }

// event is a heap entry.
type event struct {
	at    float64
	kind  eventKind
	core  int
	bank  int
	token uint64 // validity token for cancellable slot completions
}

type eventKind uint8

const (
	evIssue eventKind = iota // core issues its next trace event
	evReadDone
	evSlotDone
)

type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// bankState tracks one bank's occupancy.
type bankState struct {
	busy       bool
	busyWrite  bool   // current service is a write slot
	token      uint64 // bumps to invalidate a cancelled slot's completion
	readQ      []pendingRead
	writeSlots int // backlog of write slots queued at this bank
}

type pendingRead struct {
	core    int
	arrived float64
}

// coreState tracks one core.
type coreState struct {
	time float64 // when the core can issue its next event
	next *trace.Event
	done bool
}

// Simulator runs a trace through the machine.
type Simulator struct {
	cfg    Config
	coster SlotCoster

	banks []bankState
	cores []coreState

	activeSlots int
	heap        eventHeap

	res          Result
	readLatSum   float64
	pendingByCPU [][]trace.Event
	src          trace.Source
	srcDone      bool
	remaining    int // trace events left to issue

	// waiters[bank] holds cores stalled on that bank's write buffer.
	waiters [][]int
}

// NewSimulator builds a Simulator over a trace source and a slot coster.
func NewSimulator(cfg Config, src trace.Source, coster SlotCoster) (*Simulator, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if src == nil || coster == nil {
		return nil, fmt.Errorf("timing: nil source or coster")
	}
	s := &Simulator{
		cfg:          cfg,
		coster:       coster,
		banks:        make([]bankState, cfg.Banks),
		cores:        make([]coreState, cfg.Cores),
		pendingByCPU: make([][]trace.Event, cfg.Cores),
		src:          src,
		waiters:      make([][]int, cfg.Banks),
	}
	return s, nil
}

// nsPerInstr converts instruction gaps to nanoseconds.
func (s *Simulator) nsPerInstr() float64 { return 1 / (s.cfg.IPC * s.cfg.ClockGHz) }

// pull fetches the next trace event for a core, buffering events of other
// cores encountered along the way. Returns false at end of trace.
func (s *Simulator) pull(core int) (trace.Event, bool) {
	if q := s.pendingByCPU[core]; len(q) > 0 {
		e := q[0]
		s.pendingByCPU[core] = q[1:]
		return e, true
	}
	for !s.srcDone {
		e, err := s.src.Next()
		if err != nil {
			s.srcDone = true
			break
		}
		cpu := int(e.CPU) % s.cfg.Cores
		if cpu == core {
			return e, true
		}
		s.pendingByCPU[cpu] = append(s.pendingByCPU[cpu], e)
	}
	return trace.Event{}, false
}

// Run simulates until maxEvents trace events have been issued (or the
// source ends), then drains outstanding memory traffic.
func (s *Simulator) Run(maxEvents int) (Result, error) {
	if maxEvents <= 0 {
		return Result{}, fmt.Errorf("timing: maxEvents must be positive, got %d", maxEvents)
	}
	s.remaining = maxEvents
	// Prime every core with its first event. Each core schedules its own
	// next issue when it becomes ready again (immediately for posted
	// writes, at read completion for reads, at buffer drain for stalls).
	for c := range s.cores {
		s.scheduleNextIssue(c)
	}

	for len(s.heap) > 0 {
		e := heap.Pop(&s.heap).(event)
		switch e.kind {
		case evIssue:
			s.issue(e.core, e.at)
		case evReadDone:
			s.readDone(e.core, e.bank, e.at)
		case evSlotDone:
			if e.token == s.banks[e.bank].token {
				s.slotDone(e.bank, e.at)
			} // else: this slot was cancelled by a read
		}
	}
	// Execution time: the last core activity.
	for _, c := range s.cores {
		if c.time > s.res.ExecNs {
			s.res.ExecNs = c.time
		}
	}
	if s.res.Reads > 0 {
		s.res.AvgReadLatencyNs = s.readLatSum / float64(s.res.Reads)
	}
	return s.res, nil
}

// scheduleNextIssue pulls the core's next trace event and schedules its
// issue at core.time + gap. It must only be called when the core is ready
// (no stall outstanding).
func (s *Simulator) scheduleNextIssue(core int) {
	if s.remaining <= 0 {
		s.cores[core].done = true
		return
	}
	e, ok := s.pull(core)
	if !ok {
		s.cores[core].done = true
		return
	}
	s.remaining--
	c := &s.cores[core]
	gapNs := float64(e.Gap) * s.nsPerInstr()
	c.next = &e
	c.time += gapNs
	s.res.Instructions += uint64(e.Gap)
	heap.Push(&s.heap, event{at: c.time, kind: evIssue, core: core})
}

// issue processes a core's trace event at time t.
func (s *Simulator) issue(core int, t float64) {
	c := &s.cores[core]
	e := c.next
	c.next = nil
	if e == nil {
		return
	}
	bank := int(e.Line) % s.cfg.Banks
	switch e.Kind {
	case trace.Read:
		s.res.Reads++
		b := &s.banks[bank]
		b.readQ = append(b.readQ, pendingRead{core: core, arrived: t})
		if s.cfg.WritePausing && b.busy && b.busyWrite {
			// Cancel the in-flight slot: its completion event goes
			// stale and its work stays in the backlog for a retry.
			b.token++
			b.busy = false
			s.activeSlots--
			s.res.PausedSlots++
			// The freed current budget may unblock another bank.
			if s.activeSlots == s.cfg.MaxConcurrentSlots-1 {
				for i := range s.banks {
					if s.activeSlots >= s.cfg.MaxConcurrentSlots {
						break
					}
					if i != bank {
						s.kickBank(i, t)
					}
				}
			}
		}
		s.kickBank(bank, t)
		// The core stalls; its time advances when evReadDone fires.
	case trace.Writeback:
		s.res.Writes++
		slots := s.coster.WriteSlots(e.Line, e.Data)
		if slots > 0 {
			b := &s.banks[bank]
			if b.writeSlots+slots > s.cfg.WriteBufferSlots {
				// Write buffer full: core stalls until this
				// bank drains below the limit.
				s.waiters[bank] = append(s.waiters[bank], core)
				b.writeSlots += slots
				s.res.SlotsIssued += uint64(slots)
				s.kickBank(bank, t)
				return
			}
			b.writeSlots += slots
			s.res.SlotsIssued += uint64(slots)
			s.kickBank(bank, t)
		}
		// Posted write: core continues immediately.
		s.coreReady(core, t)
	}
}

// coreReady resumes a core at time t.
func (s *Simulator) coreReady(core int, t float64) {
	c := &s.cores[core]
	if t > c.time {
		c.time = t
	}
	if c.next == nil && !c.done {
		s.scheduleNextIssue(core)
	}
}

// kickBank starts the next piece of work on a bank if it is idle:
// reads first, then one write slot if the global budget allows.
func (s *Simulator) kickBank(bank int, t float64) {
	b := &s.banks[bank]
	if b.busy {
		return
	}
	if len(b.readQ) > 0 {
		r := b.readQ[0]
		b.readQ = b.readQ[1:]
		b.busy = true
		b.busyWrite = false
		done := t + s.cfg.ReadLatencyNs
		s.readLatSum += done - r.arrived
		heap.Push(&s.heap, event{at: done, kind: evReadDone, core: r.core, bank: bank})
		return
	}
	if b.writeSlots > 0 && s.activeSlots < s.cfg.MaxConcurrentSlots {
		b.busy = true
		b.busyWrite = true
		s.activeSlots++
		heap.Push(&s.heap, event{at: t + s.cfg.SlotLatencyNs, kind: evSlotDone, bank: bank, token: b.token})
	}
}

// readDone completes a read: the bank frees and the waiting core resumes.
func (s *Simulator) readDone(core, bank int, t float64) {
	s.banks[bank].busy = false
	s.kickBank(bank, t)
	s.coreReady(core, t)
}

// slotDone completes one write slot.
func (s *Simulator) slotDone(bank int, t float64) {
	b := &s.banks[bank]
	b.busy = false
	s.activeSlots--
	b.writeSlots--
	// Wake cores stalled on this bank's write buffer once below limit.
	if b.writeSlots < s.cfg.WriteBufferSlots && len(s.waiters[bank]) > 0 {
		for _, core := range s.waiters[bank] {
			stallEnd := t
			if stallEnd > s.cores[core].time {
				s.res.WriteStallNs += stallEnd - s.cores[core].time
			}
			s.coreReady(core, stallEnd)
		}
		s.waiters[bank] = s.waiters[bank][:0]
	}
	s.kickBank(bank, t)
	// The freed budget may unblock other banks.
	if s.activeSlots == s.cfg.MaxConcurrentSlots-1 {
		for i := range s.banks {
			if s.activeSlots >= s.cfg.MaxConcurrentSlots {
				break
			}
			s.kickBank(i, t)
		}
	}
}

// DumpState writes a debugging snapshot to w.
func (s *Simulator) DumpState(w io.Writer) {
	fmt.Fprintf(w, "activeSlots=%d heap=%d\n", s.activeSlots, len(s.heap))
	for i, b := range s.banks {
		if b.busy || b.writeSlots > 0 || len(b.readQ) > 0 {
			fmt.Fprintf(w, "bank %d: busy=%v readQ=%d writeSlots=%d\n", i, b.busy, len(b.readQ), b.writeSlots)
		}
	}
}
