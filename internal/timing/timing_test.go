package timing

import (
	"io"
	"math"
	"strings"
	"testing"

	"deuce/internal/trace"
)

// sliceSource replays a fixed event slice.
type sliceSource struct {
	events []trace.Event
	i      int
}

func (s *sliceSource) Next() (trace.Event, error) {
	if s.i >= len(s.events) {
		return trace.Event{}, io.EOF
	}
	e := s.events[s.i]
	s.i++
	return e, nil
}

func fixedSlots(n int) SlotCoster {
	return SlotCosterFunc(func(uint64, []byte) int { return n })
}

func wb(line uint64, cpu uint8, gap uint32) trace.Event {
	return trace.Event{Kind: trace.Writeback, Line: line, CPU: cpu, Gap: gap, Data: make([]byte, 64)}
}

func rd(line uint64, cpu uint8, gap uint32) trace.Event {
	return trace.Event{Kind: trace.Read, Line: line, CPU: cpu, Gap: gap}
}

func TestConfigValidation(t *testing.T) {
	src := &sliceSource{}
	if _, err := NewSimulator(Config{Cores: -1}, src, fixedSlots(1)); err == nil {
		t.Error("negative cores accepted")
	}
	if _, err := NewSimulator(Config{}, nil, fixedSlots(1)); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := NewSimulator(Config{}, src, nil); err == nil {
		t.Error("nil coster accepted")
	}
}

func TestRunRejectsZeroEvents(t *testing.T) {
	s, err := NewSimulator(Config{Cores: 1}, &sliceSource{}, fixedSlots(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(0); err == nil {
		t.Error("zero maxEvents accepted")
	}
}

// A single read on an idle machine takes exactly gap-compute + read latency.
func TestSingleReadLatency(t *testing.T) {
	src := &sliceSource{events: []trace.Event{rd(0, 0, 1600)}}
	s, _ := NewSimulator(Config{Cores: 1}, src, fixedSlots(1))
	res, err := s.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	// 1600 instructions at IPC4 x 4GHz = 100ns, plus 75ns read.
	want := 100.0 + 75.0
	if math.Abs(res.ExecNs-want) > 1e-9 {
		t.Errorf("ExecNs = %v, want %v", res.ExecNs, want)
	}
	if res.Reads != 1 || res.AvgReadLatencyNs != 75 {
		t.Errorf("reads=%d lat=%v", res.Reads, res.AvgReadLatencyNs)
	}
}

// Posted writes do not stall the core while the buffer has room, but the
// simulation still accounts for the slots.
func TestPostedWrite(t *testing.T) {
	src := &sliceSource{events: []trace.Event{wb(0, 0, 1600), rd(1, 0, 1600)}}
	s, _ := NewSimulator(Config{Cores: 1, Banks: 2}, src, fixedSlots(4))
	res, err := s.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	// The write goes to bank 0, the read to bank 1: no interference.
	want := 200.0 + 75.0
	if math.Abs(res.ExecNs-want) > 1e-9 {
		t.Errorf("ExecNs = %v, want %v (write should be posted)", res.ExecNs, want)
	}
	if res.SlotsIssued != 4 {
		t.Errorf("SlotsIssued = %d, want 4", res.SlotsIssued)
	}
}

// A read behind an in-flight write slot waits for at most one slot, not the
// whole line write: slot-granularity scheduling (the paper's mechanism).
func TestReadPriorityOverRemainingSlots(t *testing.T) {
	src := &sliceSource{events: []trace.Event{
		wb(0, 0, 0),  // 4 slots to bank 0 at t=0
		rd(0, 0, 16), // read to bank 0 at t=1ns
	}}
	s, _ := NewSimulator(Config{Cores: 1, Banks: 1}, src, fixedSlots(4))
	res, err := s.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	// Slot 1 occupies [0,150). The read arrives at 1, starts at 150,
	// finishes at 225. Remaining 3 slots follow: 225+450 = 675.
	if math.Abs(res.AvgReadLatencyNs-224) > 1e-9 {
		t.Errorf("read latency = %v, want 224 (wait one slot only)", res.AvgReadLatencyNs)
	}
	if math.Abs(res.ExecNs-225) > 1e-9 {
		// Core finishes at read completion; remaining slots drain
		// in the background but ExecNs tracks core time.
		t.Errorf("ExecNs = %v, want 225", res.ExecNs)
	}
}

// More slots per write must not make execution faster under a write-bound
// load, and fewer slots must help.
func TestSlotCountMonotonicity(t *testing.T) {
	mkTrace := func() trace.Source {
		var evs []trace.Event
		for i := 0; i < 400; i++ {
			evs = append(evs, wb(uint64(i), 0, 16))
			evs = append(evs, rd(uint64(i), 0, 16))
		}
		return &sliceSource{events: evs}
	}
	exec := func(slots int) float64 {
		// One bank so the write service time is on the critical path.
		s, _ := NewSimulator(Config{Cores: 1, Banks: 1, MaxConcurrentSlots: 4, WriteBufferSlots: 8}, mkTrace(), fixedSlots(slots))
		res, err := s.Run(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		return res.ExecNs
	}
	t1, t2, t4 := exec(1), exec(2), exec(4)
	if !(t1 < t2 && t2 < t4) {
		t.Errorf("exec times not monotone in slots: %v, %v, %v", t1, t2, t4)
	}
	if t4/t1 < 1.5 {
		t.Errorf("4-slot writes only %.2fx slower than 1-slot under write-bound load", t4/t1)
	}
}

// A tighter global write-current budget must slow a parallel write load.
func TestPowerBudgetConstrains(t *testing.T) {
	mkTrace := func() trace.Source {
		var evs []trace.Event
		for i := 0; i < 200; i++ {
			for c := uint8(0); c < 8; c++ {
				evs = append(evs, wb(uint64(i*8+int(c)), c, 16))
			}
		}
		return &sliceSource{events: evs}
	}
	exec := func(budget int) float64 {
		s, _ := NewSimulator(Config{Cores: 8, Banks: 32, MaxConcurrentSlots: budget, WriteBufferSlots: 8}, mkTrace(), fixedSlots(4))
		res, err := s.Run(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		return res.ExecNs
	}
	wide, tight := exec(32), exec(2)
	if tight <= wide {
		t.Errorf("tight budget (%v ns) not slower than wide (%v ns)", tight, wide)
	}
}

// Full write buffers must stall cores and account the stall.
func TestWriteBufferBackpressure(t *testing.T) {
	var evs []trace.Event
	for i := 0; i < 50; i++ {
		evs = append(evs, wb(0, 0, 0)) // all to bank 0, no compute gaps
	}
	s, _ := NewSimulator(Config{Cores: 1, Banks: 1, WriteBufferSlots: 4, MaxConcurrentSlots: 4}, &sliceSource{events: evs}, fixedSlots(4))
	res, err := s.Run(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteStallNs == 0 {
		t.Error("expected write-buffer stalls on a saturated bank")
	}
	// All slots must eventually issue.
	if res.SlotsIssued != 200 {
		t.Errorf("SlotsIssued = %d, want 200", res.SlotsIssued)
	}
}

// Zero-slot writes (nothing changed) cost nothing.
func TestZeroSlotWriteIsFree(t *testing.T) {
	src := &sliceSource{events: []trace.Event{wb(0, 0, 1600)}}
	s, _ := NewSimulator(Config{Cores: 1}, src, fixedSlots(0))
	res, err := s.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if res.SlotsIssued != 0 {
		t.Errorf("SlotsIssued = %d", res.SlotsIssued)
	}
	if math.Abs(res.ExecNs-100) > 1e-9 {
		t.Errorf("ExecNs = %v, want 100", res.ExecNs)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() *Simulator {
		var evs []trace.Event
		for i := 0; i < 300; i++ {
			if i%3 == 0 {
				evs = append(evs, rd(uint64(i), uint8(i%4), uint32(i%100)))
			} else {
				evs = append(evs, wb(uint64(i), uint8(i%4), uint32(i%100)))
			}
		}
		s, _ := NewSimulator(Config{Cores: 4}, &sliceSource{events: evs}, fixedSlots(3))
		return s
	}
	r1, err1 := mk().Run(1000)
	r2, err2 := mk().Run(1000)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1 != r2 {
		t.Errorf("nondeterministic results: %+v vs %+v", r1, r2)
	}
}

func TestInstructionAccounting(t *testing.T) {
	src := &sliceSource{events: []trace.Event{rd(0, 0, 100), rd(1, 0, 200), rd(2, 0, 300)}}
	s, _ := NewSimulator(Config{Cores: 1}, src, fixedSlots(1))
	res, err := s.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions != 600 {
		t.Errorf("Instructions = %d, want 600", res.Instructions)
	}
	if res.IPCAggregate() <= 0 {
		t.Error("IPCAggregate should be positive")
	}
}

func TestDumpState(t *testing.T) {
	s, _ := NewSimulator(Config{Cores: 1}, &sliceSource{}, fixedSlots(1))
	var b strings.Builder
	s.DumpState(&b)
	if b.Len() == 0 {
		t.Error("DumpState wrote nothing")
	}
}

// Write pausing must cut the read latency behind a write burst to near the
// raw array latency, at the cost of redone slot work.
func TestWritePausing(t *testing.T) {
	mkTrace := func() trace.Source {
		return &sliceSource{events: []trace.Event{
			wb(0, 0, 0),  // 4 slots to bank 0
			rd(0, 0, 16), // read arrives 1ns later
		}}
	}
	run := func(pausing bool) Result {
		s, _ := NewSimulator(Config{Cores: 1, Banks: 1, WritePausing: pausing}, mkTrace(), fixedSlots(4))
		res, err := s.Run(10)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(false)
	paused := run(true)
	// Without pausing the read waits out the in-flight slot (224ns
	// latency, from TestReadPriorityOverRemainingSlots); with pausing it
	// starts immediately (~76ns).
	if paused.AvgReadLatencyNs >= base.AvgReadLatencyNs {
		t.Errorf("pausing did not reduce read latency: %v vs %v",
			paused.AvgReadLatencyNs, base.AvgReadLatencyNs)
	}
	if paused.AvgReadLatencyNs > 80 {
		t.Errorf("paused read latency = %v, want ~76", paused.AvgReadLatencyNs)
	}
	if paused.PausedSlots != 1 {
		t.Errorf("PausedSlots = %d, want 1", paused.PausedSlots)
	}
	if base.PausedSlots != 0 {
		t.Errorf("baseline PausedSlots = %d, want 0", base.PausedSlots)
	}
	// All four slots still complete (the cancelled one retries).
	if paused.SlotsIssued != 4 {
		t.Errorf("SlotsIssued = %d, want 4", paused.SlotsIssued)
	}
}

// Cancelled slots must actually retry: a paused-heavy run still drains its
// entire write backlog.
func TestWritePausingDrainsBacklog(t *testing.T) {
	var evs []trace.Event
	for i := 0; i < 100; i++ {
		evs = append(evs, wb(0, 0, 8))
		evs = append(evs, rd(0, 0, 8))
	}
	s, _ := NewSimulator(Config{Cores: 1, Banks: 1, WritePausing: true, WriteBufferSlots: 1 << 20}, &sliceSource{events: evs}, fixedSlots(2))
	res, err := s.Run(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Writes != 100 || res.Reads != 100 {
		t.Fatalf("traffic lost: %d writes, %d reads", res.Writes, res.Reads)
	}
	s.DumpState(discard{})
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Two cores with identical demand on disjoint banks must finish together:
// no starvation from event ordering.
func TestMultiCoreFairness(t *testing.T) {
	var evs []trace.Event
	for i := 0; i < 200; i++ {
		evs = append(evs, rd(uint64(i*2), 0, 100))   // core 0 -> even banks
		evs = append(evs, rd(uint64(i*2+1), 1, 100)) // core 1 -> odd banks
	}
	s, _ := NewSimulator(Config{Cores: 2, Banks: 2}, &sliceSource{events: evs}, fixedSlots(1))
	res, err := s.Run(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reads != 400 {
		t.Fatalf("reads = %d", res.Reads)
	}
	// Per-core service is identical, so total time ~= one core's serial
	// time: 200*(100*0.0625 + 75) = 16250ns.
	want := 200 * (100*0.0625 + 75.0)
	if res.ExecNs < want*0.99 || res.ExecNs > want*1.01 {
		t.Errorf("ExecNs = %v, want ~%v (fair, uncontended)", res.ExecNs, want)
	}
}

// Bank conflicts between cores serialize reads: same trace, one bank.
func TestBankConflictSerializesReads(t *testing.T) {
	mk := func(banks int) float64 {
		var evs []trace.Event
		for i := 0; i < 100; i++ {
			evs = append(evs, rd(0, 0, 0))
			evs = append(evs, rd(1, 1, 0)) // bank 1 if banks=2, bank 0's twin if banks=1
		}
		s, _ := NewSimulator(Config{Cores: 2, Banks: banks}, &sliceSource{events: evs}, fixedSlots(1))
		res, err := s.Run(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		return res.ExecNs
	}
	conflicted, parallel := mk(1), mk(2)
	if conflicted < parallel*1.8 {
		t.Errorf("bank conflict only %.2fx slower (%v vs %v)", conflicted/parallel, conflicted, parallel)
	}
}
