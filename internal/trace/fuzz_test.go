package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"deuce/internal/bitutil"
)

// FuzzReader throws arbitrary bytes at the decoder: it must return an
// error or EOF, never panic, and never allocate absurd payloads.
func FuzzReader(f *testing.F) {
	// Seed with a valid single-event trace.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Write(Event{Kind: Writeback, Line: 3, CPU: 1, Gap: 9, Data: make([]byte, 64)})
	_ = w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte("DTR1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, raw []byte) {
		r := NewReader(bytes.NewReader(raw))
		for i := 0; i < 1000; i++ {
			_, err := r.Read()
			if err != nil {
				if !errors.Is(err, io.EOF) && err == nil {
					t.Fatal("nil error with failure")
				}
				return
			}
		}
	})
}

// FuzzRoundTrip encodes fuzz-shaped events and decodes them back.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint32(5), []byte("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"))
	f.Fuzz(func(t *testing.T, line uint64, cpu uint8, gap uint32, payload []byte) {
		if len(payload) == 0 || len(payload) > 1<<16 {
			return
		}
		events := []Event{
			{Kind: Read, Line: line, CPU: cpu, Gap: gap},
			{Kind: Writeback, Line: line ^ 1, CPU: cpu, Gap: gap / 2, Data: payload},
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, e := range events {
			if err := w.Write(e); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r := NewReader(&buf)
		for _, want := range events {
			got, err := r.Read()
			if err != nil {
				t.Fatal(err)
			}
			if got.Kind != want.Kind || got.Line != want.Line || got.CPU != want.CPU || got.Gap != want.Gap {
				t.Fatalf("got %+v, want %+v", got, want)
			}
			if want.Kind == Writeback && !bitutil.Equal(got.Data, want.Data) {
				t.Fatal("payload mismatch")
			}
		}
	})
}
