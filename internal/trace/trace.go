// Package trace defines the memory-event stream that connects workload
// generators, the cache hierarchy, the write schemes, and the timing model,
// plus a compact binary codec so traces can be generated once (cmd/tracegen)
// and replayed deterministically.
//
// An event is either a read miss arriving at PCM or a dirty-line writeback
// leaving the L4. Each event carries the number of instructions the issuing
// core executed since its previous event, which is what the timing model
// needs to convert a trace into execution time.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Kind discriminates event types.
type Kind uint8

// Event kinds.
const (
	// Read is a read miss serviced by PCM.
	Read Kind = iota
	// Writeback is a dirty-line eviction written to PCM.
	Writeback
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Read:
		return "R"
	case Writeback:
		return "W"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one memory request.
type Event struct {
	// Kind says whether this is a read miss or a writeback.
	Kind Kind
	// Line is the cache-line address (line index, not byte address).
	Line uint64
	// CPU is the issuing core, for multi-core timing.
	CPU uint8
	// Gap is the number of instructions the issuing core executed
	// since its previous event.
	Gap uint32
	// Data is the 64-byte payload for writebacks; nil for reads.
	Data []byte
}

// String implements fmt.Stringer for debugging.
func (e Event) String() string {
	return fmt.Sprintf("%s cpu%d line=%d gap=%d", e.Kind, e.CPU, e.Line, e.Gap)
}

// magic identifies the binary trace format, versioned for forward breaks.
var magic = [4]byte{'D', 'T', 'R', '1'}

// Writer encodes events to a stream. Call Flush before closing the
// underlying writer.
type Writer struct {
	w     *bufio.Writer
	began bool
}

// NewWriter returns a Writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write appends one event.
func (tw *Writer) Write(e Event) error {
	if !tw.began {
		if _, err := tw.w.Write(magic[:]); err != nil {
			return fmt.Errorf("trace: writing header: %w", err)
		}
		tw.began = true
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := tw.w.Write(buf[:n])
		return err
	}
	if err := tw.w.WriteByte(byte(e.Kind)); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := put(e.Line); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := tw.w.WriteByte(e.CPU); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := put(uint64(e.Gap)); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if e.Kind == Writeback {
		if len(e.Data) == 0 {
			return errors.New("trace: writeback event without data")
		}
		if err := put(uint64(len(e.Data))); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		if _, err := tw.w.Write(e.Data); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	return nil
}

// Flush drains buffered bytes to the underlying writer.
func (tw *Writer) Flush() error {
	if !tw.began {
		// An empty trace still carries a header so readers can
		// distinguish "empty" from "garbage".
		if _, err := tw.w.Write(magic[:]); err != nil {
			return fmt.Errorf("trace: writing header: %w", err)
		}
		tw.began = true
	}
	return tw.w.Flush()
}

// Reader decodes events written by Writer.
type Reader struct {
	r     *bufio.Reader
	began bool
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Read returns the next event, or io.EOF at end of trace.
func (tr *Reader) Read() (Event, error) {
	if !tr.began {
		var got [4]byte
		if _, err := io.ReadFull(tr.r, got[:]); err != nil {
			return Event{}, fmt.Errorf("trace: reading header: %w", err)
		}
		if got != magic {
			return Event{}, fmt.Errorf("trace: bad magic %q", got)
		}
		tr.began = true
	}
	kindB, err := tr.r.ReadByte()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return Event{}, io.EOF
		}
		return Event{}, fmt.Errorf("trace: %w", err)
	}
	e := Event{Kind: Kind(kindB)}
	if e.Kind != Read && e.Kind != Writeback {
		return Event{}, fmt.Errorf("trace: unknown event kind %d", kindB)
	}
	if e.Line, err = binary.ReadUvarint(tr.r); err != nil {
		return Event{}, fmt.Errorf("trace: %w", err)
	}
	cpu, err := tr.r.ReadByte()
	if err != nil {
		return Event{}, fmt.Errorf("trace: %w", err)
	}
	e.CPU = cpu
	gap, err := binary.ReadUvarint(tr.r)
	if err != nil {
		return Event{}, fmt.Errorf("trace: %w", err)
	}
	if gap > 1<<32-1 {
		return Event{}, fmt.Errorf("trace: gap %d overflows uint32", gap)
	}
	e.Gap = uint32(gap)
	if e.Kind == Writeback {
		n, err := binary.ReadUvarint(tr.r)
		if err != nil {
			return Event{}, fmt.Errorf("trace: %w", err)
		}
		if n == 0 || n > 1<<16 {
			return Event{}, fmt.Errorf("trace: implausible payload size %d", n)
		}
		e.Data = make([]byte, n)
		if _, err := io.ReadFull(tr.r, e.Data); err != nil {
			return Event{}, fmt.Errorf("trace: payload: %w", err)
		}
	}
	return e, nil
}

// Source produces a stream of events; workload generators and Readers both
// satisfy it, so consumers (schemes, timing model) are agnostic to whether a
// trace is replayed from disk or synthesized on the fly.
type Source interface {
	// Next returns the next event, or io.EOF when the stream ends.
	Next() (Event, error)
}

// ReaderSource adapts a Reader to the Source interface.
type ReaderSource struct{ R *Reader }

// Next implements Source.
func (s ReaderSource) Next() (Event, error) { return s.R.Read() }
