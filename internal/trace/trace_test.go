package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"deuce/internal/bitutil"
)

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var events []Event
	for i := 0; i < 500; i++ {
		e := Event{
			Line: uint64(rng.Intn(1 << 20)),
			CPU:  uint8(rng.Intn(8)),
			Gap:  uint32(rng.Intn(10000)),
		}
		if rng.Intn(2) == 0 {
			e.Kind = Writeback
			e.Data = make([]byte, 64)
			rng.Read(e.Data)
		}
		events = append(events, e)
	}

	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, e := range events {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	for i, want := range events {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if got.Kind != want.Kind || got.Line != want.Line || got.CPU != want.CPU || got.Gap != want.Gap {
			t.Fatalf("event %d: got %+v, want %+v", i, got, want)
		}
		if want.Kind == Writeback && !bitutil.Equal(got.Data, want.Data) {
			t.Fatalf("event %d: payload mismatch", i)
		}
	}
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Errorf("expected EOF at end, got %v", err)
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Errorf("empty trace should EOF, got %v", err)
	}
}

func TestBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("XXXX....")))
	if _, err := r.Read(); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	data := make([]byte, 64)
	if err := w.Write(Event{Kind: Writeback, Line: 1, Data: data}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-10]
	r := NewReader(bytes.NewReader(trunc))
	if _, err := r.Read(); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestWritebackWithoutDataRejected(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	if err := w.Write(Event{Kind: Writeback, Line: 1}); err == nil {
		t.Error("payload-less writeback accepted")
	}
}

func TestUnknownKindRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{'D', 'T', 'R', '1', 7}) // kind 7
	r := NewReader(&buf)
	if _, err := r.Read(); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestKindString(t *testing.T) {
	if Read.String() != "R" || Writeback.String() != "W" {
		t.Error("Kind.String mismatch")
	}
	e := Event{Kind: Read, Line: 5, CPU: 2, Gap: 100}
	if e.String() == "" {
		t.Error("Event.String empty")
	}
}

func TestReaderSource(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Event{Kind: Read, Line: 42}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	var src Source = ReaderSource{R: NewReader(&buf)}
	e, err := src.Next()
	if err != nil || e.Line != 42 {
		t.Fatalf("Next = %+v, %v", e, err)
	}
}

func TestKindStringUnknown(t *testing.T) {
	if Kind(9).String() == "" {
		t.Error("unknown kind String empty")
	}
}

// Writer must surface underlying I/O failures instead of swallowing them.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n += len(p)
	if f.n > 2 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestWriterPropagatesIOErrors(t *testing.T) {
	w := NewWriter(&failWriter{})
	data := make([]byte, 64)
	// The bufio layer absorbs small writes; flush forces the failure.
	for i := 0; i < 10000; i++ {
		if err := w.Write(Event{Kind: Writeback, Line: uint64(i), Data: data}); err != nil {
			return // surfaced mid-stream: acceptable
		}
	}
	if err := w.Flush(); err == nil {
		t.Error("write errors never surfaced")
	}
}

func TestEmptyFlushTwice(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 4 {
		t.Errorf("double flush wrote %d bytes, want just the 4-byte header", buf.Len())
	}
}
