package wear

import (
	"fmt"
	"math"
	"sort"
)

// ECP models Error-Correcting Pointers (Schechter et al., ISCA 2010 —
// paper ref [4]): instead of dying at the first worn-out cell, a line
// carries n spare cells with pointers, each able to permanently replace
// one failed cell. Lifetime then ends at the (n+1)-th cell failure.
//
// Under deterministic per-position program rates, position p fails after
// endurance/rate(p) writes, so the line's lifetime with ECP-n is set by
// the (n+1)-th highest rate. This composes directly with the wear
// profiles the device collects: ECP extends lifetime a lot for skewed
// profiles (a few hot cells die early, spares absorb them) and very
// little for uniform ones — which is exactly why the paper pairs flip
// reduction with HWL instead of relying on spares.
type ECP struct {
	// Pointers is the number of replaceable cells per line (ECP-n).
	Pointers int
}

// ECP6 is the configuration the ECP paper recommends for 64-byte lines
// (6 pointers ≈ 12% storage overhead).
var ECP6 = ECP{Pointers: 6}

// LifetimeWrites returns the writes until the (Pointers+1)-th cell of the
// profile reaches the endurance limit, given per-position program counts
// over a window of `writes` line writes.
func (e ECP) LifetimeWrites(posWrites []uint64, writes uint64, endurance float64) (float64, error) {
	if e.Pointers < 0 {
		return 0, fmt.Errorf("wear: negative ECP pointer count %d", e.Pointers)
	}
	if len(posWrites) == 0 || writes == 0 {
		return 0, fmt.Errorf("wear: empty wear profile")
	}
	rates := make([]float64, len(posWrites))
	for i, c := range posWrites {
		rates[i] = float64(c) / float64(writes)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(rates)))
	idx := e.Pointers
	if idx >= len(rates) {
		idx = len(rates) - 1
	}
	if rates[idx] == 0 {
		return math.Inf(1), nil
	}
	return endurance / rates[idx], nil
}

// Gain returns the lifetime multiplier ECP-n provides over ECP-0 for the
// profile — the skew-dependence the type comment describes.
func (e ECP) Gain(posWrites []uint64, writes uint64) (float64, error) {
	withECP, err := e.LifetimeWrites(posWrites, writes, DefaultEndurance)
	if err != nil {
		return 0, err
	}
	bare, err := ECP{Pointers: 0}.LifetimeWrites(posWrites, writes, DefaultEndurance)
	if err != nil {
		return 0, err
	}
	if math.IsInf(withECP, 1) && math.IsInf(bare, 1) {
		return 1, nil
	}
	return withECP / bare, nil
}
