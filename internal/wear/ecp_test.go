package wear

import (
	"math"
	"testing"
)

func TestECPValidation(t *testing.T) {
	if _, err := (ECP{Pointers: -1}).LifetimeWrites([]uint64{1}, 1, 1e7); err == nil {
		t.Error("negative pointers accepted")
	}
	if _, err := ECP6.LifetimeWrites(nil, 1, 1e7); err == nil {
		t.Error("empty profile accepted")
	}
	if _, err := ECP6.LifetimeWrites([]uint64{1}, 0, 1e7); err == nil {
		t.Error("zero writes accepted")
	}
}

func TestECPLifetimeOrder(t *testing.T) {
	// Profile: one very hot cell, two warm, rest cold.
	pos := make([]uint64, 16)
	pos[0] = 100
	pos[1] = 50
	pos[2] = 50
	pos[3] = 10
	const writes = 100

	l0, err := (ECP{Pointers: 0}).LifetimeWrites(pos, writes, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	l1, _ := (ECP{Pointers: 1}).LifetimeWrites(pos, writes, 1e6)
	l3, _ := (ECP{Pointers: 3}).LifetimeWrites(pos, writes, 1e6)

	// ECP-0 dies with the hottest cell (rate 1.0): 1e6 writes.
	if l0 != 1e6 {
		t.Errorf("ECP-0 lifetime = %v, want 1e6", l0)
	}
	// ECP-1 survives to the second cell (rate 0.5): 2e6.
	if l1 != 2e6 {
		t.Errorf("ECP-1 lifetime = %v, want 2e6", l1)
	}
	// ECP-3 survives to the fourth cell (rate 0.1): 1e7.
	if l3 != 1e7 {
		t.Errorf("ECP-3 lifetime = %v, want 1e7", l3)
	}
}

func TestECPMorePointersNeverHurt(t *testing.T) {
	pos := []uint64{100, 90, 80, 70, 60, 50, 40, 30}
	prev := 0.0
	for n := 0; n < 8; n++ {
		l, err := (ECP{Pointers: n}).LifetimeWrites(pos, 100, 1e7)
		if err != nil {
			t.Fatal(err)
		}
		if l < prev {
			t.Fatalf("lifetime decreased at ECP-%d: %v < %v", n, l, prev)
		}
		prev = l
	}
}

func TestECPBeyondProfileSaturates(t *testing.T) {
	pos := []uint64{10, 5}
	l, err := (ECP{Pointers: 100}).LifetimeWrites(pos, 10, 1e7)
	if err != nil {
		t.Fatal(err)
	}
	// Clamped to the last (coolest) position.
	if l != 1e7/0.5 {
		t.Errorf("saturated lifetime = %v, want %v", l, 1e7/0.5)
	}
}

func TestECPInfiniteForColdTail(t *testing.T) {
	pos := []uint64{10, 0, 0}
	l, err := (ECP{Pointers: 1}).LifetimeWrites(pos, 10, 1e7)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(l, 1) {
		t.Errorf("cold-tail lifetime = %v, want +Inf", l)
	}
}

// The architectural point: ECP gains a lot on skewed profiles and nothing
// on uniform ones.
func TestECPGainTracksSkew(t *testing.T) {
	skewed := make([]uint64, 32)
	skewed[0] = 1000
	for i := 1; i < 32; i++ {
		skewed[i] = 10
	}
	uniform := make([]uint64, 32)
	for i := range uniform {
		uniform[i] = 100
	}
	gs, err := ECP6.Gain(skewed, 1000)
	if err != nil {
		t.Fatal(err)
	}
	gu, err := ECP6.Gain(uniform, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if gs < 50 {
		t.Errorf("skewed-profile ECP gain = %.1f, want large", gs)
	}
	if gu != 1 {
		t.Errorf("uniform-profile ECP gain = %.1f, want exactly 1", gu)
	}
}
