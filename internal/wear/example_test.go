package wear_test

import (
	"fmt"

	"deuce/internal/pcmdev"
	"deuce/internal/wear"
)

// A Start-Gap array with Horizontal Wear Leveling is a drop-in
// pcmdev.Array: writes land remapped and bit-rotated, reads reverse both,
// and a hot bit's wear spreads across the whole line over time.
func Example() {
	sg := wear.MustNewStartGap(
		pcmdev.Config{Lines: 8},
		wear.StartGapConfig{Psi: 1, Mode: wear.HWL},
	)

	data := make([]byte, 64)
	const writes = 2000 // enough rounds for the rotation to sweep the line
	for i := 0; i < writes; i++ {
		data[0] ^= 0xff // hammer the first byte
		sg.Write(3, data, nil)
	}
	got, _ := sg.Read(3)
	fmt.Println("data survives remap+rotation:", got[0] == data[0])

	profile := wear.MustAnalyze(sg.PositionWrites(), writes)
	fmt.Println("hot byte smeared over many positions:", profile.Skew() < 10)
	// Output:
	// data survives remap+rotation: true
	// hot byte smeared over many positions: true
}

// Lifetime analysis from a position profile: the hottest cell sets the
// lifetime; HWL's goal is MaxRate -> AvgRate.
func ExampleProfile_RelativeLifetime() {
	// Encrypted baseline: uniform 50% program rate.
	base := wear.MustAnalyze([]uint64{50, 50, 50, 50}, 100)
	// A scheme with half the flips, perfectly leveled.
	leveled := wear.MustAnalyze([]uint64{25, 25, 25, 25}, 100)
	fmt.Printf("%.1fx\n", leveled.RelativeLifetime(base))
	// Output: 2.0x
}
