package wear

import (
	"fmt"
	"math"
)

// DefaultEndurance is a representative PCM cell endurance in writes
// (the 10^7-10^8 range is standard for PCM; the exact constant cancels in
// all normalized lifetime comparisons).
const DefaultEndurance = 1e7

// Profile is the per-bit-position wear analysis of a write stream — the
// quantity behind Figures 12 and 14.
type Profile struct {
	// Writes is the number of line writes the profile covers.
	Writes uint64
	// Positions is the number of bit positions per line (data+meta).
	Positions int
	// MaxRate is the highest per-position program probability per write.
	MaxRate float64
	// AvgRate is the mean per-position program probability per write.
	AvgRate float64
	// MaxPos is the bit position achieving MaxRate.
	MaxPos int
}

// Analyze builds a Profile from per-position program counts (as returned by
// pcmdev.Array.PositionWrites) over the given number of line writes.
func Analyze(posWrites []uint64, writes uint64) (Profile, error) {
	if len(posWrites) == 0 {
		return Profile{}, fmt.Errorf("wear: empty position profile")
	}
	if writes == 0 {
		return Profile{}, fmt.Errorf("wear: zero writes")
	}
	p := Profile{Writes: writes, Positions: len(posWrites)}
	var sum uint64
	var max uint64
	for i, c := range posWrites {
		sum += c
		if c > max {
			max = c
			p.MaxPos = i
		}
	}
	p.MaxRate = float64(max) / float64(writes)
	p.AvgRate = float64(sum) / float64(len(posWrites)) / float64(writes)
	return p, nil
}

// MustAnalyze is Analyze for inputs known to be valid.
func MustAnalyze(posWrites []uint64, writes uint64) Profile {
	p, err := Analyze(posWrites, writes)
	if err != nil {
		panic(err)
	}
	return p
}

// Skew returns MaxRate/AvgRate — how many times more often the hottest bit
// position is programmed than the average position. This is the "6x for
// mcf, 27x for libquantum" metric of Figure 12.
func (p Profile) Skew() float64 {
	if p.AvgRate == 0 {
		return 0
	}
	return p.MaxRate / p.AvgRate
}

// LifetimeWrites returns the number of line writes until the hottest cell
// reaches the given endurance. The first cell to die ends the line's life
// (the paper's model; error correction slack is orthogonal).
func (p Profile) LifetimeWrites(endurance float64) float64 {
	if p.MaxRate == 0 {
		return math.Inf(1)
	}
	return endurance / p.MaxRate
}

// RelativeLifetime returns this profile's lifetime normalized to a baseline
// profile (Figure 14 normalizes to the encrypted memory, whose per-position
// rate is a uniform ~0.5). Endurance cancels.
func (p Profile) RelativeLifetime(base Profile) float64 {
	if p.MaxRate == 0 {
		return math.Inf(1)
	}
	return base.MaxRate / p.MaxRate
}

// PerfectLifetimeWrites returns the lifetime the same flip volume would
// achieve under perfectly uniform bit writes — the upper bound HWL
// approaches ("within 0.5% of perfect wear leveling", §5.3).
func (p Profile) PerfectLifetimeWrites(endurance float64) float64 {
	if p.AvgRate == 0 {
		return math.Inf(1)
	}
	return endurance / p.AvgRate
}

// NormalizedProfile converts raw per-position counts into the
// writes-relative-to-average series plotted in Figure 12.
func NormalizedProfile(posWrites []uint64) []float64 {
	var sum uint64
	for _, c := range posWrites {
		sum += c
	}
	out := make([]float64, len(posWrites))
	if sum == 0 {
		return out
	}
	avg := float64(sum) / float64(len(posWrites))
	for i, c := range posWrites {
		out[i] = float64(c) / avg
	}
	return out
}
