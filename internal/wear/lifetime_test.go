package wear

import (
	"math"
	"testing"
)

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(nil, 10); err == nil {
		t.Error("accepted empty profile")
	}
	if _, err := Analyze([]uint64{1}, 0); err == nil {
		t.Error("accepted zero writes")
	}
}

func TestAnalyzeBasics(t *testing.T) {
	// 4 positions over 10 writes: counts 10, 5, 5, 0.
	p, err := Analyze([]uint64{10, 5, 5, 0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxRate != 1.0 {
		t.Errorf("MaxRate = %v, want 1.0", p.MaxRate)
	}
	if p.MaxPos != 0 {
		t.Errorf("MaxPos = %d, want 0", p.MaxPos)
	}
	if p.AvgRate != 0.5 {
		t.Errorf("AvgRate = %v, want 0.5", p.AvgRate)
	}
	if p.Skew() != 2.0 {
		t.Errorf("Skew = %v, want 2.0", p.Skew())
	}
}

func TestLifetimeWrites(t *testing.T) {
	p := MustAnalyze([]uint64{10, 5, 5, 0}, 10)
	if got := p.LifetimeWrites(1e7); got != 1e7 {
		t.Errorf("LifetimeWrites = %v, want 1e7", got)
	}
	if got := p.PerfectLifetimeWrites(1e7); got != 2e7 {
		t.Errorf("PerfectLifetimeWrites = %v, want 2e7", got)
	}
}

func TestRelativeLifetime(t *testing.T) {
	// Encrypted baseline: uniform 0.5 rate. Scheme: max rate 0.25.
	base := MustAnalyze([]uint64{5, 5, 5, 5}, 10)
	scheme := MustAnalyze([]uint64{2, 1, 2, 1}, 10)
	got := scheme.RelativeLifetime(base)
	want := 0.5 / 0.2
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("RelativeLifetime = %v, want %v", got, want)
	}
}

func TestZeroRateEdges(t *testing.T) {
	p := MustAnalyze([]uint64{0, 0}, 5)
	if !math.IsInf(p.LifetimeWrites(1e7), 1) {
		t.Error("zero-rate lifetime should be +Inf")
	}
	if p.Skew() != 0 {
		t.Error("zero-rate skew should be 0")
	}
}

func TestNormalizedProfile(t *testing.T) {
	got := NormalizedProfile([]uint64{4, 2, 2, 0})
	want := []float64{2, 1, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NormalizedProfile[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// All-zero counts: all-zero profile, no NaN.
	for _, v := range NormalizedProfile([]uint64{0, 0}) {
		if v != 0 {
			t.Error("zero counts should normalize to zeros")
		}
	}
}

func TestMix64Decorrelates(t *testing.T) {
	// Consecutive inputs should not produce consecutive outputs mod a
	// small modulus (the property the hashed HWL variant needs).
	seen := make(map[uint64]int)
	for i := uint64(0); i < 544; i++ {
		seen[mix64(i, 7)%544]++
	}
	// With 544 draws over 544 buckets, expect a spread, not a cycle.
	if len(seen) < 250 {
		t.Errorf("mix64 hit only %d distinct buckets out of 544 draws", len(seen))
	}
}
