package wear

import (
	"fmt"
	"math/rand"

	"deuce/internal/pcmdev"
)

// SecurityRefresh implements the other vertical wear-leveling algorithm the
// paper names in §5.2: Security Refresh (Seong, Woo & Lee, ISCA 2010).
// Lines are remapped by XOR-ing the address with a secret key; a refresh
// pointer sweeps the address space swapping lines pairwise from the current
// key's mapping to the next key's, and when a sweep completes a fresh
// random key is drawn. Unlike Start-Gap's deterministic rotation, the
// mapping is unpredictable to an attacker without the keys.
//
// The XOR structure makes remapping pairwise: logical lines LA and LA⊕d
// (d = kc⊕kn) exchange physical slots when the pointer processes their
// pair. A line is "processed" this round when its pair's canonical index
// (min of the two) is below the pointer.
//
// The paper's Horizontal Wear Leveling extension applies here exactly as
// it does to Start-Gap: each line is physically rewritten once per round
// (its pair swap), which is the free moment to advance its intra-line
// rotation. Rotation amounts derive from the line's completed-round count,
// plainly or hashed (footnote 2).
type SecurityRefresh struct {
	inner *pcmdev.Device
	cfg   StartGapConfig // Psi/Mode/FreeGapMoves are shared semantics
	rng   *rand.Rand

	n    int // lines, power of two
	mask uint64
	kc   uint64 // current key
	kn   uint64 // next key
	p    uint64 // refresh pointer over canonical pair indices

	rounds          uint64 // completed sweeps
	writesSinceStep int
	swaps           uint64

	totalBits int
}

// NewSecurityRefresh builds a Security Refresh array over the logical
// geometry in devCfg. The line count must be a power of two (XOR
// remapping); seed makes the key sequence deterministic for experiments.
func NewSecurityRefresh(devCfg pcmdev.Config, cfg StartGapConfig, seed int64) (*SecurityRefresh, error) {
	if cfg.Psi == 0 {
		cfg.Psi = DefaultPsi
	}
	if cfg.Psi < 1 {
		return nil, fmt.Errorf("wear: Psi must be positive, got %d", cfg.Psi)
	}
	switch cfg.Mode {
	case VWLOnly, HWL, HWLHashed:
	default:
		return nil, fmt.Errorf("wear: unknown mode %d", int(cfg.Mode))
	}
	if devCfg.Lines < 2 || devCfg.Lines&(devCfg.Lines-1) != 0 {
		return nil, fmt.Errorf("wear: SecurityRefresh needs a power-of-two line count, got %d", devCfg.Lines)
	}
	inner, err := pcmdev.New(devCfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	s := &SecurityRefresh{
		inner:     inner,
		cfg:       cfg,
		rng:       rng,
		n:         devCfg.Lines,
		mask:      uint64(devCfg.Lines - 1),
		kc:        0, // identity mapping at boot: fresh array reads back zeroes
		totalBits: inner.Config().TotalBitsPerLine(),
	}
	s.kn = s.freshKey()
	return s, nil
}

// MustNewSecurityRefresh is NewSecurityRefresh for valid configurations.
func MustNewSecurityRefresh(devCfg pcmdev.Config, cfg StartGapConfig, seed int64) *SecurityRefresh {
	s, err := NewSecurityRefresh(devCfg, cfg, seed)
	if err != nil {
		panic(err)
	}
	return s
}

// freshKey draws a non-degenerate next key (kn != kc keeps pairs disjoint).
func (s *SecurityRefresh) freshKey() uint64 {
	for {
		k := uint64(s.rng.Intn(s.n))
		if k != s.kc {
			return k
		}
	}
}

// processed reports whether the line's pair has been remapped this round.
func (s *SecurityRefresh) processed(line uint64) bool {
	d := s.kc ^ s.kn
	canon := line
	if other := line ^ d; other < canon {
		canon = other
	}
	return canon < s.p
}

// physical maps a logical line to its current physical slot.
func (s *SecurityRefresh) physical(line uint64) uint64 {
	if s.processed(line) {
		return line ^ s.kn
	}
	return line ^ s.kc
}

// roundsOf returns the number of times the line has been physically
// rewritten by refresh sweeps (the HWL rotation counter).
func (s *SecurityRefresh) roundsOf(line uint64) uint64 {
	if s.processed(line) {
		return s.rounds + 1
	}
	return s.rounds
}

// rotation returns the line's current intra-line rotation amount.
func (s *SecurityRefresh) rotation(line uint64) int {
	switch s.cfg.Mode {
	case HWL:
		return int(s.roundsOf(line) % uint64(s.totalBits))
	case HWLHashed:
		return int(mix64(s.roundsOf(line), line) % uint64(s.totalBits))
	default:
		return 0
	}
}

// rotate applies the shared HWL shifter.
func (s *SecurityRefresh) rotate(data, meta []byte, k int) (rdata, rmeta []byte) {
	return rotateImage(s.inner.Config(), s.totalBits, data, meta, k)
}

func (s *SecurityRefresh) metaOrNil(m []byte) []byte {
	if s.inner.Config().MetaBits == 0 {
		return nil
	}
	return m
}

// Write implements pcmdev.Array.
func (s *SecurityRefresh) Write(line uint64, data, meta []byte) pcmdev.WriteResult {
	s.checkLine(line)
	rdata, rmeta := s.rotate(data, meta, s.rotation(line))
	res := s.inner.Write(s.physical(line), rdata, s.metaOrNil(rmeta))

	s.writesSinceStep++
	if s.writesSinceStep >= s.cfg.Psi {
		s.writesSinceStep = 0
		if !s.cfg.FreeGapMoves {
			// The pair-swap below writes the inner device again,
			// clobbering the scratch buffer res.SlotFlips aliases.
			res.SlotFlips = append([]int(nil), res.SlotFlips...)
		}
		s.step()
	}
	return res
}

// Read implements pcmdev.Array.
func (s *SecurityRefresh) Read(line uint64) (data, meta []byte) {
	s.checkLine(line)
	d, m := s.inner.Read(s.physical(line))
	return s.rotate(d, m, -s.rotation(line))
}

// Peek implements pcmdev.Array.
func (s *SecurityRefresh) Peek(line uint64) (data, meta []byte) {
	s.checkLine(line)
	d, m := s.inner.Peek(s.physical(line))
	return s.rotate(d, m, -s.rotation(line))
}

// PeekInto implements pcmdev.Array. The de-rotation allocates; wear-leveled
// arrays are not on the zero-allocation fast path.
func (s *SecurityRefresh) PeekInto(line uint64, data, meta []byte) {
	d, m := s.Peek(line)
	copy(data, d)
	copy(meta, m)
}

// ReadInto implements pcmdev.Array. The de-rotation allocates; wear-leveled
// arrays are not on the zero-allocation read path.
func (s *SecurityRefresh) ReadInto(line uint64, data, meta []byte) {
	d, m := s.Read(line)
	copy(data, d)
	copy(meta, m)
}

// Load implements pcmdev.Array.
func (s *SecurityRefresh) Load(line uint64, data, meta []byte) {
	s.checkLine(line)
	rdata, rmeta := s.rotate(data, meta, s.rotation(line))
	s.inner.Load(s.physical(line), rdata, s.metaOrNil(rmeta))
}

// step processes one canonical pair: the two logical lines of the pair
// exchange physical slots (moving from the kc mapping to kn), acquiring
// their next rotation amounts in the same rewrite.
func (s *SecurityRefresh) step() {
	d := s.kc ^ s.kn
	// Advance past indices that are not canonical (their pair partner is
	// smaller and was processed when the pointer passed it).
	for s.p < uint64(s.n) && (s.p^d) < s.p {
		s.p++
	}
	if s.p >= uint64(s.n) {
		s.completeRound()
		return
	}
	a := s.p // canonical line of the pair; partner is a^d
	b := a ^ d

	// Pre-swap images and rotations.
	da, ma := s.Peek(a)
	db, mb := s.Peek(b)
	s.p++ // the pair is now processed: mappings and rotations advance
	s.swaps++

	s.storeAt(a, da, ma)
	s.storeAt(b, db, mb)

	if s.p >= uint64(s.n) {
		s.completeRound()
	}
}

// storeAt writes a logical line's plaintext image at its *current* mapping
// with its current rotation, bypassing cost accounting when configured
// (same FreeGapMoves semantics as Start-Gap).
func (s *SecurityRefresh) storeAt(line uint64, data, meta []byte) {
	rdata, rmeta := s.rotate(data, meta, s.rotation(line))
	if s.cfg.FreeGapMoves {
		s.inner.Load(s.physical(line), rdata, s.metaOrNil(rmeta))
		return
	}
	s.inner.Write(s.physical(line), rdata, s.metaOrNil(rmeta))
}

// completeRound retires the current key and draws the next.
func (s *SecurityRefresh) completeRound() {
	s.kc = s.kn
	s.kn = s.freshKey()
	s.p = 0
	s.rounds++
}

// Config implements pcmdev.Array.
func (s *SecurityRefresh) Config() pcmdev.Config { return s.inner.Config() }

// Stats implements pcmdev.Array.
func (s *SecurityRefresh) Stats() pcmdev.Stats { return s.inner.Stats() }

// ResetStats implements pcmdev.Array.
func (s *SecurityRefresh) ResetStats() { s.inner.ResetStats() }

// PositionWrites implements pcmdev.Array.
func (s *SecurityRefresh) PositionWrites() []uint64 { return s.inner.PositionWrites() }

// LineWrites implements pcmdev.Array: physical per-line write counts.
func (s *SecurityRefresh) LineWrites() []uint64 { return s.inner.LineWrites() }

// Rounds returns completed refresh sweeps.
func (s *SecurityRefresh) Rounds() uint64 { return s.rounds }

// Swaps returns pair swaps performed.
func (s *SecurityRefresh) Swaps() uint64 { return s.swaps }

func (s *SecurityRefresh) checkLine(line uint64) {
	if line >= uint64(s.n) {
		panic(fmt.Sprintf("wear: logical line %d out of range [0,%d)", line, s.n))
	}
}

var _ pcmdev.Array = (*SecurityRefresh)(nil)

// InnerDevice exposes the physical array for wear analysis.
func (s *SecurityRefresh) InnerDevice() *pcmdev.Device { return s.inner }
