package wear

import (
	"math/rand"
	"testing"

	"deuce/internal/bitutil"
	"deuce/internal/pcmdev"
)

func srDev(t testing.TB, lines, metaBits int, cfg StartGapConfig) *SecurityRefresh {
	t.Helper()
	s, err := NewSecurityRefresh(pcmdev.Config{Lines: lines, MetaBits: metaBits}, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSecurityRefreshValidation(t *testing.T) {
	if _, err := NewSecurityRefresh(pcmdev.Config{Lines: 12}, StartGapConfig{}, 1); err == nil {
		t.Error("non-power-of-two line count accepted")
	}
	if _, err := NewSecurityRefresh(pcmdev.Config{Lines: 1}, StartGapConfig{}, 1); err == nil {
		t.Error("single-line memory accepted")
	}
	if _, err := NewSecurityRefresh(pcmdev.Config{Lines: 8}, StartGapConfig{Psi: -2}, 1); err == nil {
		t.Error("negative psi accepted")
	}
	if _, err := NewSecurityRefresh(pcmdev.Config{Lines: 8}, StartGapConfig{Mode: Mode(9)}, 1); err == nil {
		t.Error("bad mode accepted")
	}
}

// The logical→physical map must stay a permutation through sweeps and key
// rotations.
func TestSRMappingIsPermutation(t *testing.T) {
	s := srDev(t, 16, 0, StartGapConfig{Psi: 1})
	data := make([]byte, 64)
	for step := 0; step < 300; step++ {
		seen := make(map[uint64]bool)
		for l := uint64(0); l < 16; l++ {
			pa := s.physical(l)
			if pa >= 16 {
				t.Fatalf("step %d: physical %d out of range", step, pa)
			}
			if seen[pa] {
				t.Fatalf("step %d: physical %d mapped twice", step, pa)
			}
			seen[pa] = true
		}
		data[0] = byte(step)
		s.Write(uint64(step%16), data, nil)
	}
	if s.Rounds() == 0 {
		t.Error("no refresh rounds completed in 300 psi=1 writes over 16 lines")
	}
	if s.Swaps() == 0 {
		t.Error("no pair swaps recorded")
	}
}

// Data must survive arbitrary sweeps under every mode, with metadata.
func TestSRDataIntegrity(t *testing.T) {
	for _, mode := range []Mode{VWLOnly, HWL, HWLHashed} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			const lines = 8
			s := srDev(t, lines, 16, StartGapConfig{Psi: 2, Mode: mode})
			shadowD := make([][]byte, lines)
			shadowM := make([][]byte, lines)
			rng := rand.New(rand.NewSource(int64(mode) + 11))
			for l := range shadowD {
				shadowD[l] = make([]byte, 64)
				shadowM[l] = make([]byte, 2)
			}
			for step := 0; step < 800; step++ {
				l := uint64(rng.Intn(lines))
				rng.Read(shadowD[l])
				rng.Read(shadowM[l])
				s.Write(l, shadowD[l], shadowM[l])
				for v := uint64(0); v < lines; v++ {
					d, m := s.Peek(v)
					if !bitutil.Equal(d, shadowD[v]) || !bitutil.Equal(m, shadowM[v]) {
						t.Fatalf("step %d: line %d corrupted (rounds=%d)", step, v, s.Rounds())
					}
				}
			}
		})
	}
}

// A hot logical line must visit many physical slots across rounds — the
// inter-line leveling Security Refresh exists for.
func TestSRRelocatesHotLine(t *testing.T) {
	s := srDev(t, 16, 0, StartGapConfig{Psi: 1})
	data := make([]byte, 64)
	visited := make(map[uint64]bool)
	for i := 0; i < 500; i++ {
		data[0] = byte(i)
		s.Write(3, data, nil)
		visited[s.physical(3)] = true
	}
	if len(visited) < 4 {
		t.Errorf("hot line visited only %d physical slots", len(visited))
	}
}

// The hashed-HWL variant must flatten intra-line wear like Start-Gap's.
func TestSRHWLFlattens(t *testing.T) {
	skewFor := func(mode Mode) float64 {
		s := srDev(t, 4, 0, StartGapConfig{Psi: 1, Mode: mode, FreeGapMoves: true})
		rng := rand.New(rand.NewSource(31))
		data := make([]byte, 64)
		const writes = 20000
		for i := 0; i < writes; i++ {
			data[0], data[1] = byte(rng.Int()), byte(rng.Int())
			s.Write(uint64(i%4), data, nil)
		}
		p := MustAnalyze(s.PositionWrites(), uint64(writes))
		return p.Skew()
	}
	if v := skewFor(VWLOnly); v < 5 {
		t.Errorf("VWL-only skew = %.1f, expected hot-word concentration", v)
	}
	if h := skewFor(HWLHashed); h > 2.5 {
		t.Errorf("hashed HWL skew = %.1f, expected near-uniform", h)
	}
}

func TestSRLoadBypassesCost(t *testing.T) {
	s := srDev(t, 8, 0, StartGapConfig{Mode: HWLHashed})
	data := make([]byte, 64)
	data[3] = 0x77
	s.Load(5, data, nil)
	if s.Stats().Writes != 0 {
		t.Error("Load counted as write")
	}
	d, _ := s.Peek(5)
	if !bitutil.Equal(d, data) {
		t.Error("Load round trip failed")
	}
}

func TestSROutOfRangePanics(t *testing.T) {
	s := srDev(t, 8, 0, StartGapConfig{})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range access did not panic")
		}
	}()
	s.Read(8)
}

// Reads on a freshly booted array return zeroes (identity initial mapping).
func TestSRFreshReadsZero(t *testing.T) {
	s := srDev(t, 8, 8, StartGapConfig{})
	d, m := s.Read(5)
	if bitutil.PopCount(d) != 0 || bitutil.PopCount(m) != 0 {
		t.Error("fresh array reads non-zero")
	}
}
