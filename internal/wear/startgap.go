// Package wear implements the durability machinery of the paper's §5:
// Start-Gap vertical wear leveling (Qureshi et al., MICRO 2009 — paper ref
// [20]), the paper's Horizontal Wear Leveling extension that rotates each
// line's bits by an algebraic function of the Start register, the hashed
// per-line rotation variant of footnote 2, and the endurance-limited
// lifetime model behind Figures 12 and 14.
//
// Concurrency: the wear-leveling remapper is unlocked single-owner state
// on the write path, advanced inline by the goroutine that owns the
// scheme instance, like everything else in the controller model.
package wear

import (
	"fmt"

	"deuce/internal/bitutil"
	"deuce/internal/pcmdev"
)

// DefaultPsi is the gap-move interval in writes (§5.2 "every so often, say
// 100 writes").
const DefaultPsi = 100

// Mode selects the horizontal wear-leveling policy of a StartGap array.
type Mode int

const (
	// VWLOnly performs Start-Gap line remapping with no bit rotation.
	VWLOnly Mode = iota
	// HWL additionally rotates each line by Start' % bitsPerLine
	// (§5.3), where Start' is Start+1 for lines the gap has already
	// passed this round.
	HWL
	// HWLHashed rotates by Hash(Start', lineAddr) % bitsPerLine
	// (footnote 2), which breaks the deterministic pattern an adversary
	// could track.
	HWLHashed
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case VWLOnly:
		return "VWL"
	case HWL:
		return "HWL"
	case HWLHashed:
		return "HWL-hashed"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// StartGapConfig configures a StartGap array.
type StartGapConfig struct {
	// Psi is the number of writes between gap moves; 0 means DefaultPsi.
	Psi int
	// Mode selects VWL-only or one of the HWL rotations.
	Mode Mode
	// FreeGapMoves excludes gap-move copies from wear and flip
	// accounting. At the paper's scale (psi=100, billions of writes)
	// gap moves contribute <1% of cell programs; scaled-down simulations
	// need small psi values to accumulate realistic Start-register
	// counts, and without this flag the gap copies would dominate the
	// wear profile and mask the effect being measured.
	FreeGapMoves bool
}

// StartGap wraps a pcmdev.Device with Start-Gap remapping and optional
// Horizontal Wear Leveling. It exposes N logical lines over N+1 physical
// lines (the extra one is the gap) and implements pcmdev.Array, so schemes
// in internal/core can be constructed directly on top of it.
//
// The stored image of logical line L is always rotated left by rot(L) bits,
// where rot(L) is the line's current HWL rotation amount. The invariant is
// maintained without dedicated rotation writes: a line's rotation amount
// only changes at the moment the gap move copies it anyway (§5.3).
type StartGap struct {
	inner *pcmdev.Device
	cfg   StartGapConfig

	n      int    // logical lines
	start  int    // Start register modulo n, used for address mapping
	rounds uint64 // total Start increments ever, used for HWL rotation
	gap    int    // physical location of the gap, in [0, n]

	writesSinceMove int
	gapMoves        uint64
	totalBits       int // data+meta bits per line, the rotation modulus
}

// NewStartGap builds a StartGap array for the logical geometry in devCfg.
// The inner device is created with one extra physical line.
func NewStartGap(devCfg pcmdev.Config, cfg StartGapConfig) (*StartGap, error) {
	if cfg.Psi == 0 {
		cfg.Psi = DefaultPsi
	}
	if cfg.Psi < 1 {
		return nil, fmt.Errorf("wear: Psi must be positive, got %d", cfg.Psi)
	}
	switch cfg.Mode {
	case VWLOnly, HWL, HWLHashed:
	default:
		return nil, fmt.Errorf("wear: unknown mode %d", int(cfg.Mode))
	}
	if devCfg.Lines < 2 {
		return nil, fmt.Errorf("wear: need at least 2 logical lines, got %d", devCfg.Lines)
	}
	phys := devCfg
	phys.Lines = devCfg.Lines + 1
	inner, err := pcmdev.New(phys)
	if err != nil {
		return nil, err
	}
	return &StartGap{
		inner: inner,
		cfg:   cfg,
		n:     devCfg.Lines,
		gap:   devCfg.Lines, // gap starts past the last logical line
		// Derive the rotation modulus from the device's resolved
		// geometry so configuration defaults are applied exactly once.
		totalBits: inner.Config().TotalBitsPerLine(),
	}, nil
}

// MustNewStartGap is NewStartGap for configurations known to be valid.
func MustNewStartGap(devCfg pcmdev.Config, cfg StartGapConfig) *StartGap {
	s, err := NewStartGap(devCfg, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// physical maps a logical line to its current physical location
// (paper §5.2: PA = (LA + Start) mod N, incremented if the gap sits at or
// below it).
func (s *StartGap) physical(line uint64) uint64 {
	pa := (int(line) + s.start) % s.n
	if pa >= s.gap {
		pa++
	}
	return uint64(pa)
}

// startPrime returns Start', the per-line effective start count: lines the
// gap has already passed this round have been moved (and rotated) one extra
// time (§5.3). Unlike the mapping register, this value never wraps at n —
// the paper's rotation amount is the total number of rotations the line has
// undergone, modulo the bits in the line.
func (s *StartGap) startPrime(line uint64) uint64 {
	pa := (int(line) + s.start) % s.n
	if pa >= s.gap {
		return s.rounds + 1
	}
	return s.rounds
}

// rotation returns the current HWL rotation amount for a logical line.
func (s *StartGap) rotation(line uint64) int {
	switch s.cfg.Mode {
	case HWL:
		return int(s.startPrime(line) % uint64(s.totalBits))
	case HWLHashed:
		return int(mix64(s.startPrime(line), line) % uint64(s.totalBits))
	default:
		return 0
	}
}

// rotate returns (data, meta) rotated as a single bit string by k bits.
func (s *StartGap) rotate(data, meta []byte, k int) (rdata, rmeta []byte) {
	return rotateImage(s.inner.Config(), s.totalBits, data, meta, k)
}

// rotateImage rotates a line's combined data+metadata bit image by k bits,
// the HWL shifter operation shared by every wear leveler in this package.
func rotateImage(cfg pcmdev.Config, totalBits int, data, meta []byte, k int) (rdata, rmeta []byte) {
	if k == 0 {
		return bitutil.Clone(data), bitutil.Clone(meta)
	}
	// Pack data and the first MetaBits of meta into one bit image.
	img := make([]byte, (totalBits+7)/8)
	copy(img, data)
	for i := 0; i < cfg.MetaBits; i++ {
		bitutil.SetBit(img, cfg.LineBits()+i, bitutil.GetBit(meta, i))
	}
	// The packed image may have padding bits past totalBits; rotate only
	// the live region by working at exact bit length.
	rot := rotateBits(img, totalBits, k)
	// Unpack.
	rdata = make([]byte, cfg.LineBytes)
	copy(rdata, rot[:cfg.LineBytes])
	rmeta = make([]byte, (cfg.MetaBits+7)/8)
	for i := 0; i < cfg.MetaBits; i++ {
		bitutil.SetBit(rmeta, i, bitutil.GetBit(rot, cfg.LineBits()+i))
	}
	return rdata, rmeta
}

// rotateBits rotates the first n bits of img left by k, leaving padding zero.
func rotateBits(img []byte, n, k int) []byte {
	out := make([]byte, len(img))
	k = ((k % n) + n) % n
	for i := 0; i < n; i++ {
		if bitutil.GetBit(img, i) {
			bitutil.SetBit(out, (i+k)%n, true)
		}
	}
	return out
}

// Write implements pcmdev.Array. Every Psi-th write additionally moves the
// gap, which is the moment a line's rotation amount advances.
func (s *StartGap) Write(line uint64, data, meta []byte) pcmdev.WriteResult {
	s.checkLine(line)
	rdata, rmeta := s.rotate(data, meta, s.rotation(line))
	res := s.inner.Write(s.physical(line), rdata, s.metaOrNil(rmeta))

	s.writesSinceMove++
	if s.writesSinceMove >= s.cfg.Psi {
		s.writesSinceMove = 0
		if !s.cfg.FreeGapMoves {
			// The gap-move copy below writes the inner device again,
			// clobbering the scratch buffer res.SlotFlips aliases.
			res.SlotFlips = append([]int(nil), res.SlotFlips...)
		}
		s.moveGap()
	}
	return res
}

// Read implements pcmdev.Array.
func (s *StartGap) Read(line uint64) (data, meta []byte) {
	s.checkLine(line)
	d, m := s.inner.Read(s.physical(line))
	return s.rotate(d, m, -s.rotation(line))
}

// Peek implements pcmdev.Array.
func (s *StartGap) Peek(line uint64) (data, meta []byte) {
	s.checkLine(line)
	d, m := s.inner.Peek(s.physical(line))
	return s.rotate(d, m, -s.rotation(line))
}

// PeekInto implements pcmdev.Array. The de-rotation allocates; wear-leveled
// arrays are not on the zero-allocation fast path.
func (s *StartGap) PeekInto(line uint64, data, meta []byte) {
	d, m := s.Peek(line)
	copy(data, d)
	copy(meta, m)
}

// ReadInto implements pcmdev.Array. The de-rotation allocates; wear-leveled
// arrays are not on the zero-allocation read path.
func (s *StartGap) ReadInto(line uint64, data, meta []byte) {
	d, m := s.Read(line)
	copy(data, d)
	copy(meta, m)
}

// Load implements pcmdev.Array.
func (s *StartGap) Load(line uint64, data, meta []byte) {
	s.checkLine(line)
	rdata, rmeta := s.rotate(data, meta, s.rotation(line))
	s.inner.Load(s.physical(line), rdata, s.metaOrNil(rmeta))
}

// moveGap advances the gap by one position: the line just before the gap
// (circularly) moves into the gap slot, acquiring its new rotation amount in
// the same write (§5.3, Figure 13c).
func (s *StartGap) moveGap() {
	s.gapMoves++
	if s.gap == 0 {
		// Wrap: the line at physical N moves to physical 0 and the
		// Start register increments. Every line's Start' is already
		// Start+1 at this point, so no rotation change occurs and the
		// copy is verbatim.
		d, m := s.inner.Peek(uint64(s.n))
		s.store(0, d, s.metaOrNil(m))
		s.gap = s.n
		s.start = (s.start + 1) % s.n
		s.rounds++
		return
	}
	// The logical line currently at physical gap-1 moves to physical gap.
	// Its Start' increases by one as the gap passes it, so under HWL the
	// copy applies one extra rotation step.
	movedLine := uint64(((s.gap-1-s.start)%s.n + s.n) % s.n)
	oldRot := s.rotation(movedLine) // gap has not passed it yet
	d, m := s.inner.Peek(uint64(s.gap - 1))
	s.gap--
	newRot := s.rotation(movedLine) // now it has
	if delta := newRot - oldRot; delta != 0 {
		data, meta := s.rotate(d, m, delta)
		s.store(s.physical(movedLine), data, s.metaOrNil(meta))
	} else {
		s.store(s.physical(movedLine), d, s.metaOrNil(m))
	}
}

// store commits a gap-move copy, with or without cost accounting per
// FreeGapMoves.
func (s *StartGap) store(phys uint64, data, meta []byte) {
	if s.cfg.FreeGapMoves {
		s.inner.Load(phys, data, meta)
		return
	}
	s.inner.Write(phys, data, meta)
}

func (s *StartGap) metaOrNil(m []byte) []byte {
	if s.inner.Config().MetaBits == 0 {
		return nil
	}
	return m
}

// Config implements pcmdev.Array, reporting the logical geometry.
func (s *StartGap) Config() pcmdev.Config {
	cfg := s.inner.Config()
	cfg.Lines = s.n
	return cfg
}

// Stats implements pcmdev.Array. Gap-move writes are included: they are
// real cell programs and part of Start-Gap's (small) overhead.
func (s *StartGap) Stats() pcmdev.Stats { return s.inner.Stats() }

// ResetStats implements pcmdev.Array.
func (s *StartGap) ResetStats() { s.inner.ResetStats() }

// PositionWrites implements pcmdev.Array.
func (s *StartGap) PositionWrites() []uint64 { return s.inner.PositionWrites() }

// LineWrites implements pcmdev.Array: the physical per-line distribution,
// i.e. after Start-Gap remapping — the profile VWL flattens.
func (s *StartGap) LineWrites() []uint64 { return s.inner.LineWrites() }

// GapMoves returns how many gap movements have occurred.
func (s *StartGap) GapMoves() uint64 { return s.gapMoves }

// StartRegister returns the current value of the Start register.
func (s *StartGap) StartRegister() int { return s.start }

// GapPosition returns the current physical position of the gap line.
func (s *StartGap) GapPosition() int { return s.gap }

func (s *StartGap) checkLine(line uint64) {
	if line >= uint64(s.n) {
		panic(fmt.Sprintf("wear: logical line %d out of range [0,%d)", line, s.n))
	}
}

// mix64 is a splitmix64-style mixer used for the hashed HWL variant; it
// only needs to decorrelate rotation amounts across lines, not be
// cryptographic.
func mix64(a, b uint64) uint64 {
	z := a*0x9e3779b97f4a7c15 + b + 0x7f4a7c159e3779b9
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

var _ pcmdev.Array = (*StartGap)(nil)

// InnerDevice exposes the physical array for wear analysis (per-physical-
// line write distributions live below the remapping layer).
func (s *StartGap) InnerDevice() *pcmdev.Device { return s.inner }
