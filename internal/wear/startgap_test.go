package wear

import (
	"math/rand"
	"testing"

	"deuce/internal/bitutil"
	"deuce/internal/pcmdev"
)

func sgDev(t testing.TB, lines, metaBits int, cfg StartGapConfig) *StartGap {
	t.Helper()
	s, err := NewStartGap(pcmdev.Config{Lines: lines, MetaBits: metaBits}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewStartGapValidation(t *testing.T) {
	if _, err := NewStartGap(pcmdev.Config{Lines: 1}, StartGapConfig{}); err == nil {
		t.Error("accepted 1-line memory")
	}
	if _, err := NewStartGap(pcmdev.Config{Lines: 8}, StartGapConfig{Psi: -1}); err == nil {
		t.Error("accepted negative Psi")
	}
	if _, err := NewStartGap(pcmdev.Config{Lines: 8}, StartGapConfig{Mode: Mode(99)}); err == nil {
		t.Error("accepted unknown mode")
	}
}

func TestModeString(t *testing.T) {
	if VWLOnly.String() != "VWL" || HWL.String() != "HWL" || HWLHashed.String() != "HWL-hashed" {
		t.Error("Mode.String mismatch")
	}
}

// Invariant 5: the logical→physical map is a bijection at every state.
func TestMappingIsPermutation(t *testing.T) {
	s := sgDev(t, 8, 0, StartGapConfig{Psi: 1})
	data := make([]byte, 64)
	for step := 0; step < 100; step++ {
		seen := make(map[uint64]bool)
		for l := uint64(0); l < 8; l++ {
			pa := s.physical(l)
			if pa > 8 {
				t.Fatalf("step %d: line %d mapped to %d, beyond physical range", step, l, pa)
			}
			if seen[pa] {
				t.Fatalf("step %d: physical %d hit twice", step, pa)
			}
			seen[pa] = true
			if int(pa) == s.GapPosition() {
				t.Fatalf("step %d: line %d mapped onto the gap", step, l)
			}
		}
		data[0] = byte(step)
		s.Write(uint64(step%8), data, nil) // Psi=1: every write moves the gap
	}
	if s.GapMoves() != 100 {
		t.Errorf("GapMoves = %d, want 100", s.GapMoves())
	}
	if s.StartRegister() == 0 {
		t.Error("Start register never incremented over a full rotation")
	}
}

// Data must survive arbitrary amounts of gap movement and start increments,
// under every mode.
func TestDataIntegrityAcrossGapMoves(t *testing.T) {
	for _, mode := range []Mode{VWLOnly, HWL, HWLHashed} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			const lines = 8
			s := sgDev(t, lines, 16, StartGapConfig{Psi: 3, Mode: mode})
			shadowD := make([][]byte, lines)
			shadowM := make([][]byte, lines)
			rng := rand.New(rand.NewSource(int64(mode)))
			for l := range shadowD {
				shadowD[l] = make([]byte, 64)
				shadowM[l] = make([]byte, 2)
			}
			for step := 0; step < 600; step++ {
				l := uint64(rng.Intn(lines))
				rng.Read(shadowD[l])
				rng.Read(shadowM[l])
				s.Write(l, shadowD[l], shadowM[l])
				// Verify every line after every write: any rotation
				// or remapping bug shows up immediately.
				for v := uint64(0); v < lines; v++ {
					d, m := s.Peek(v)
					if !bitutil.Equal(d, shadowD[v]) {
						t.Fatalf("step %d: data mismatch on line %d", step, v)
					}
					if !bitutil.Equal(m, shadowM[v]) {
						t.Fatalf("step %d: meta mismatch on line %d", step, v)
					}
				}
			}
		})
	}
}

// Under HWL the same logical bit must land on different physical positions
// as Start advances.
func TestHWLRotatesStoredImage(t *testing.T) {
	const lines = 4
	s := sgDev(t, lines, 0, StartGapConfig{Psi: 1, Mode: HWL})
	data := make([]byte, 64)
	data[0] = 0x01 // logical bit 0 set

	// Write the same line repeatedly; Psi=1 makes the gap sweep fast,
	// so Start climbs after every `lines+1` moves.
	physPositions := make(map[int]bool)
	for i := 0; i < 200; i++ {
		s.Write(0, data, nil)
		// Find where logical bit 0 currently lives physically.
		pd, _ := s.inner.Peek(s.physical(0))
		for b := 0; b < 512; b++ {
			if bitutil.GetBit(pd, b) {
				physPositions[b] = true
			}
		}
	}
	if len(physPositions) < 10 {
		t.Errorf("logical bit 0 visited only %d physical positions; HWL not rotating", len(physPositions))
	}
}

// Without HWL, a hot bit stays on the same intra-line position forever.
func TestVWLOnlyDoesNotRotate(t *testing.T) {
	s := sgDev(t, 4, 0, StartGapConfig{Psi: 1, Mode: VWLOnly})
	data := make([]byte, 64)
	for i := 0; i < 100; i++ {
		data[0] ^= 1 // toggle logical bit 0
		s.Write(0, data, nil)
		pd, _ := s.inner.Peek(s.physical(0))
		// Bit 0 of the stored image must equal the logical bit exactly.
		if bitutil.GetBit(pd, 0) != (data[0] == 1) {
			t.Fatal("VWL-only stored image was rotated")
		}
	}
}

// HWL must flatten the per-position wear profile that a hot-bit workload
// produces (the mechanism behind Figure 14's 1.1x -> 2x improvement).
func TestHWLFlattensWearProfile(t *testing.T) {
	skewFor := func(mode Mode) float64 {
		// Small memory + Psi=1 so the Start register climbs past the
		// 512 bits of the line within the test budget, as it does (by
		// hundreds of thousands) in a real run (§5.3).
		s := sgDev(t, 4, 0, StartGapConfig{Psi: 1, Mode: mode})
		rng := rand.New(rand.NewSource(31))
		data := make([]byte, 64)
		const writes = 20000
		for i := 0; i < writes; i++ {
			// Hot first word: only bits 0..15 ever change.
			data[0], data[1] = byte(rng.Int()), byte(rng.Int())
			s.Write(uint64(i%4), data, nil)
		}
		p := MustAnalyze(s.PositionWrites(), uint64(writes))
		return p.Skew()
	}
	vwl := skewFor(VWLOnly)
	hwl := skewFor(HWL)
	hashed := skewFor(HWLHashed)
	if vwl < 5 {
		t.Errorf("VWL-only skew = %.1f, expected a strongly skewed profile", vwl)
	}
	if hwl > 2 {
		t.Errorf("HWL skew = %.1f, expected near-uniform (<2)", hwl)
	}
	if hashed > 2 {
		t.Errorf("hashed HWL skew = %.1f, expected near-uniform (<2)", hashed)
	}
}

func TestOutOfRangeLinePanics(t *testing.T) {
	s := sgDev(t, 4, 0, StartGapConfig{})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range write did not panic")
		}
	}()
	s.Write(4, make([]byte, 64), nil)
}

func TestConfigReportsLogicalLines(t *testing.T) {
	s := sgDev(t, 4, 8, StartGapConfig{})
	if s.Config().Lines != 4 {
		t.Errorf("logical Lines = %d, want 4", s.Config().Lines)
	}
	if s.inner.Config().Lines != 5 {
		t.Errorf("physical Lines = %d, want 5", s.inner.Config().Lines)
	}
}

func TestLoadBypassesCost(t *testing.T) {
	s := sgDev(t, 4, 0, StartGapConfig{Mode: HWL})
	data := make([]byte, 64)
	data[5] = 0xff
	s.Load(2, data, nil)
	if s.Stats().Writes != 0 {
		t.Error("Load counted as a write")
	}
	d, _ := s.Peek(2)
	if !bitutil.Equal(d, data) {
		t.Error("Load round trip failed")
	}
}

// The point of vertical wear leveling, previously untested directly: a hot
// logical line's writes spread across many physical lines over rotations.
func TestVWLFlattensInterLineWear(t *testing.T) {
	run := func(wrap bool) []uint64 {
		if !wrap {
			dev := pcmdev.MustNew(pcmdev.Config{Lines: 9})
			data := make([]byte, 64)
			for i := 0; i < 4000; i++ {
				data[0] = byte(i)
				dev.Write(2, data, nil) // all heat on one line
			}
			return dev.LineWrites()
		}
		sg := MustNewStartGap(pcmdev.Config{Lines: 8}, StartGapConfig{Psi: 4, FreeGapMoves: true})
		data := make([]byte, 64)
		for i := 0; i < 4000; i++ {
			data[0] = byte(i)
			sg.Write(2, data, nil)
		}
		return sg.InnerDevice().LineWrites()
	}
	skew := func(counts []uint64) float64 {
		var max, sum uint64
		for _, c := range counts {
			sum += c
			if c > max {
				max = c
			}
		}
		return float64(max) / (float64(sum) / float64(len(counts)))
	}
	bare := skew(run(false))
	leveled := skew(run(true))
	if bare < 5 {
		t.Fatalf("unleveled inter-line skew = %.1f, expected concentration", bare)
	}
	if leveled > 2 {
		t.Errorf("Start-Gap inter-line skew = %.1f, want near-uniform", leveled)
	}
}

// Security Refresh achieves the same inter-line flattening.
func TestSRFlattensInterLineWear(t *testing.T) {
	sr := MustNewSecurityRefresh(pcmdev.Config{Lines: 8}, StartGapConfig{Psi: 4, FreeGapMoves: true}, 3)
	data := make([]byte, 64)
	for i := 0; i < 4000; i++ {
		data[0] = byte(i)
		sr.Write(2, data, nil)
	}
	counts := sr.InnerDevice().LineWrites()
	var max, sum uint64
	for _, c := range counts {
		sum += c
		if c > max {
			max = c
		}
	}
	skew := float64(max) / (float64(sum) / float64(len(counts)))
	if skew > 2.5 {
		t.Errorf("Security Refresh inter-line skew = %.1f, want near-uniform", skew)
	}
}
