package workload_test

import (
	"fmt"

	"deuce/internal/workload"
)

// Generators turn a benchmark profile into a deterministic writeback
// stream whose sparsity and footprint stability match the benchmark.
func Example() {
	prof, err := workload.ByName("mcf")
	if err != nil {
		panic(err)
	}
	gen := workload.MustNew(prof, workload.Config{Seed: 1, LinesPerCPU: 256})

	line, data := gen.NextWriteback(0)
	fmt.Println("line in range:", line < uint64(gen.Lines()))
	fmt.Println("payload bytes:", len(data))
	// Output:
	// line in range: true
	// payload bytes: 64
}
