package workload

// Fork returns an independent deep copy of the generator positioned at the
// same stream state: both copies produce the bit-identical future event
// stream, and advancing either never affects the other. It is the workload
// half of warm-state reuse (internal/exp) — a generator warmed once is
// forked per grid cell, paired with a core.Fork of the scheme it warmed.
//
// firstTouch replaces cfg.FirstTouch in the copy. The original's callback
// almost always captures the original scheme (experiment runners pass a
// closure over Scheme.Install), so carrying it into the fork would install
// fresh lines into the wrong scheme; callers must supply a callback bound
// to the forked scheme, or nil.
func (g *Generator) Fork(firstTouch func(line uint64, initial []byte)) *Generator {
	ng := &Generator{
		prof:       g.prof,
		cfg:        g.cfg,
		rng:        g.rng.Clone(),
		lines:      make([]lineState, len(g.lines)),
		base:       g.base, // immutable after construction; shared
		nextCPU:    g.nextCPU,
		eventProb:  g.eventProb,
		writebacks: g.writebacks,
		reads:      g.reads,
	}
	ng.cfg.FirstTouch = firstTouch
	for i := range g.lines {
		ls := &g.lines[i]
		if ls.data != nil {
			ng.lines[i].data = append([]byte(nil), ls.data...)
		}
		// Footprints are built once and never mutated; share them.
		ng.lines[i].footprint = ls.footprint
	}
	return ng
}
