package workload

import (
	"bytes"
	"fmt"
	"testing"
)

// transcript drives n mixed events (trace stream plus direct writebacks)
// and returns a byte transcript pinning lines, payloads and gaps.
func transcript(g *Generator, n int) []byte {
	var out bytes.Buffer
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			line, data := g.NextWriteback(i % g.cfg.CPUs)
			fmt.Fprintf(&out, "wb %d %x\n", line, data)
			continue
		}
		ev, err := g.Next()
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(&out, "ev %d %d %d %d %x\n", ev.Kind, ev.Line, ev.CPU, ev.Gap, ev.Data)
	}
	wb, rd := g.Stats()
	fmt.Fprintf(&out, "stats %d %d\n", wb, rd)
	return out.Bytes()
}

func testGen(seed int64) *Generator {
	return MustNew(mustProf("mcf"), Config{CPUs: 4, LinesPerCPU: 64, Seed: seed})
}

// TestForkBitIdentical: a fork taken mid-stream must produce the same
// future events as its original.
func TestForkBitIdentical(t *testing.T) {
	g := testGen(7)
	transcript(g, 500) // consume a prefix, leaving rng Read carry state
	f := g.Fork(nil)
	a := transcript(g, 500)
	b := transcript(f, 500)
	if !bytes.Equal(a, b) {
		t.Fatal("forked generator diverges from original")
	}
}

// TestForkIndependent: advancing a fork must not perturb the original.
func TestForkIndependent(t *testing.T) {
	g := testGen(11)
	ref := testGen(11)
	transcript(g, 300)
	transcript(ref, 300)
	f := g.Fork(nil)
	transcript(f, 200)
	if !bytes.Equal(transcript(g, 200), transcript(ref, 200)) {
		t.Fatal("advancing the fork perturbed the original")
	}
}

// TestForkReplacesFirstTouch: the fork must invoke the replacement
// callback (not the original's) for lines first touched after the fork,
// and must not re-invoke it for lines already materialized.
func TestForkReplacesFirstTouch(t *testing.T) {
	origTouched := map[uint64]bool{}
	g := MustNew(mustProf("mcf"), Config{
		CPUs: 1, LinesPerCPU: 64, Seed: 3,
		FirstTouch: func(line uint64, _ []byte) { origTouched[line] = true },
	})
	for i := 0; i < 100; i++ {
		g.NextWriteback(0)
	}

	forkTouched := map[uint64]bool{}
	f := g.Fork(func(line uint64, _ []byte) { forkTouched[line] = true })
	before := len(origTouched)
	for i := 0; i < 500; i++ {
		f.NextWriteback(0)
	}
	if len(origTouched) != before {
		t.Fatal("fork invoked the original's FirstTouch callback")
	}
	for line := range forkTouched {
		if origTouched[line] {
			t.Fatalf("fork re-touched line %d already materialized before the fork", line)
		}
	}
	if len(forkTouched) == 0 {
		t.Fatal("fork never touched a new line; test workload too small")
	}
}

func mustProf(name string) Profile {
	p, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return p
}
