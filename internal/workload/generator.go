package workload

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"deuce/internal/clonerand"
	"deuce/internal/trace"
)

// LineBytes is the cache-line size the generators produce.
const LineBytes = 64

// wordBytes is the modelling granularity for footprints (matches the
// paper's 2-byte tracking words; schemes may still track at other sizes).
const wordBytes = 2

// wordsPerLine is LineBytes/wordBytes.
const wordsPerLine = LineBytes / wordBytes

// Config sizes a Generator.
type Config struct {
	// CPUs is the number of cores in rate mode; 0 means 1.
	CPUs int
	// LinesPerCPU is each core's private working set in lines; 0 means
	// 4096 (256 KB of hot data per core — scaled down from the real
	// working sets but far larger than the DEUCE epoch state, which is
	// what matters).
	LinesPerCPU int
	// Seed makes the stream deterministic; streams with different
	// seeds are statistically identical.
	Seed int64
	// FirstTouch, when non-nil, is invoked the first time a line is
	// materialized, with the line's content *before* its first
	// writeback. Experiment runners use it to Install initial page
	// contents into schemes (paper §3.1: pages are in memory and
	// initially encrypted before the measured run), so a line's first
	// writeback is an ordinary sparse update rather than a whole-line
	// change.
	FirstTouch func(line uint64, initial []byte)
}

func (c *Config) setDefaults() {
	if c.CPUs == 0 {
		c.CPUs = 1
	}
	if c.LinesPerCPU == 0 {
		c.LinesPerCPU = 4096
	}
}

// lineState is the generator's shadow of one line's plaintext plus its
// footprint.
type lineState struct {
	data      []byte
	footprint []int // word indices; nil until first touched
}

// Generator produces a deterministic stream of writebacks and read misses
// for one benchmark profile. It implements trace.Source.
type Generator struct {
	prof Profile
	cfg  Config
	// rng drives every stochastic decision. The clonerand wrapper is
	// bit-identical to rand.New(rand.NewSource(seed)) but snapshotable,
	// which is what makes Fork possible.
	rng *clonerand.Rand

	lines []lineState // cfg.CPUs * cfg.LinesPerCPU entries
	base  []int       // benchmark-wide base footprint offsets

	nextCPU   int
	eventProb float64 // probability an event is a read miss

	writebacks uint64
	reads      uint64
}

// New builds a Generator for the profile.
func New(prof Profile, cfg Config) (*Generator, error) {
	if err := prof.validate(); err != nil {
		return nil, err
	}
	cfg.setDefaults()
	if cfg.CPUs < 1 || cfg.CPUs > 255 {
		return nil, fmt.Errorf("workload: CPUs %d out of [1,255]", cfg.CPUs)
	}
	if cfg.LinesPerCPU < 1 {
		return nil, fmt.Errorf("workload: LinesPerCPU must be positive, got %d", cfg.LinesPerCPU)
	}
	g := &Generator{
		prof:  prof,
		cfg:   cfg,
		rng:   clonerand.New(cfg.Seed ^ int64(profileHash(prof.Name))),
		lines: make([]lineState, cfg.CPUs*cfg.LinesPerCPU),
	}
	// Benchmark-wide base footprint, seeded by the profile name so every
	// run of the same benchmark shares it (struct layout is a property
	// of the program). Footprint words come in short contiguous runs:
	// the hot fields of a struct are adjacent, which is what keeps
	// coarse-grained tracking (4- and 8-byte words, Figure 8) from
	// paying the worst-case penalty.
	g.base = clusteredFootprint(rand.New(rand.NewSource(int64(profileHash(prof.Name)))), prof.FootprintWords)
	total := prof.MPKI + prof.WBPKI
	g.eventProb = prof.MPKI / total
	return g, nil
}

// MustNew is New for arguments known to be valid.
func MustNew(prof Profile, cfg Config) *Generator {
	g, err := New(prof, cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// clusteredFootprint picks n word offsets forming a mostly-contiguous
// region with occasional one-word holes. Hot fields of a struct (and the
// cells of a stencil) are adjacent, so writeback footprints concentrate in
// as few 128-bit device chunks as possible — this is what keeps the
// unencrypted memory at ~2 write slots per request (Figure 15) and keeps
// coarse-grained tracking affordable (Figure 8).
func clusteredFootprint(rng *rand.Rand, n int) []int {
	// Large footprints (stencil rows, matrix blocks) start at a 128-bit
	// chunk boundary and run dense; small ones (a few struct fields)
	// start at any 4-byte boundary and may contain cold holes.
	chunkWords := 8 // 128-bit device chunk = 8 two-byte words
	var start int
	holes := 0.1
	if n >= chunkWords {
		start = chunkWords * rng.Intn(wordsPerLine/chunkWords)
		holes = 0
	} else {
		start = 2 * rng.Intn(wordsPerLine/2)
	}
	out := make([]int, 0, n)
	w := start
	for len(out) < n {
		out = append(out, w%wordsPerLine)
		w++
		if holes > 0 && rng.Float64() < holes {
			w++ // a cold field inside the hot region
		}
	}
	return out
}

func profileHash(name string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(name))
	return h.Sum32()
}

// Lines returns the total number of distinct writeback lines the generator
// can touch (read misses use a region above this).
func (g *Generator) Lines() int { return len(g.lines) }

// Stats returns the number of writebacks and reads generated so far.
func (g *Generator) Stats() (writebacks, reads uint64) {
	return g.writebacks, g.reads
}

// pickLine chooses a line index within one CPU's region with the profile's
// hot/cold skew.
func (g *Generator) pickLine(cpu int) uint64 {
	n := g.cfg.LinesPerCPU
	hot := int(math.Ceil(g.prof.HotFrac * float64(n)))
	var idx int
	if g.rng.Float64() < g.prof.HotWeight {
		idx = g.rng.Intn(hot)
	} else {
		idx = g.rng.Intn(n)
	}
	return uint64(cpu*n + idx)
}

// footprintOf lazily builds a line's stable footprint.
func (g *Generator) footprintOf(ls *lineState) []int {
	if ls.footprint != nil {
		return ls.footprint
	}
	fp := make([]int, g.prof.FootprintWords)
	for i := range fp {
		if g.rng.Float64() < g.prof.FootprintCorr {
			fp[i] = g.base[i]
		} else {
			// Uncorrelated slots stay near the base offset: a
			// different object layout still clusters its hot
			// fields (keeps coarse tracking realistic, Figure 8).
			fp[i] = (g.base[i] + 1 + g.rng.Intn(6)) % wordsPerLine
		}
	}
	ls.footprint = fp
	return fp
}

// poisson draws a Poisson variate (Knuth's method; lambdas here are small).
func (g *Generator) poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= g.rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k // numerically unreachable for our lambdas
		}
	}
}

// mutateWord evolves the 2-byte word at index w of data per the value model.
func (g *Generator) mutateWord(data []byte, w int) {
	off := w * wordBytes
	cur := binary.LittleEndian.Uint16(data[off:])
	switch g.prof.Model {
	case ValueCounter:
		cur += uint16(1 + g.rng.Intn(3))
	case ValueFloat:
		// Mantissa churn: flip probability decays with bit position.
		var mask uint16
		for b := 0; b < 16; b++ {
			p := g.prof.BitDensity * (1 - float64(b)/20)
			if p > 0 && g.rng.Float64() < p {
				mask |= 1 << b
			}
		}
		if mask == 0 {
			mask = 1
		}
		cur ^= g.narrow(mask)
	default: // ValueRandom
		var mask uint16
		for b := 0; b < 16; b++ {
			if g.rng.Float64() < g.prof.BitDensity {
				mask |= 1 << b
			}
		}
		if mask == 0 {
			mask = 1 << uint(g.rng.Intn(16))
		}
		cur ^= g.narrow(mask)
	}
	binary.LittleEndian.PutUint16(data[off:], cur)
}

// singleByteProb is the fraction of word updates that touch only one byte
// of the 2-byte word (small stores: chars, flags, byte counters). This is
// what gives 1-byte tracking its edge in the paper's Figure 8.
const singleByteProb = 0.4

// narrow sometimes confines a flip mask to a single byte of the word.
func (g *Generator) narrow(mask uint16) uint16 {
	if g.rng.Float64() >= singleByteProb {
		return mask
	}
	if g.rng.Intn(2) == 0 {
		mask &= 0x00ff
	} else {
		mask &= 0xff00
	}
	if mask == 0 {
		mask = 1 << uint(g.rng.Intn(16))
	}
	return mask
}

// NextWriteback synthesizes the next writeback for the given CPU and
// returns the line index and the full new 64-byte payload. The returned
// slice is owned by the caller.
func (g *Generator) NextWriteback(cpu int) (uint64, []byte) {
	if cpu < 0 || cpu >= g.cfg.CPUs {
		panic(fmt.Sprintf("workload: cpu %d out of range [0,%d)", cpu, g.cfg.CPUs))
	}
	line := g.pickLine(cpu)
	ls := &g.lines[line]
	if ls.data == nil {
		ls.data = make([]byte, LineBytes)
		g.rng.Read(ls.data) // lines start with arbitrary contents
		if g.cfg.FirstTouch != nil {
			initial := make([]byte, LineBytes)
			copy(initial, ls.data)
			g.cfg.FirstTouch(line, initial)
		}
	}

	if g.prof.Dense {
		p := g.prof.WordsPerWrite / wordsPerLine
		touched := 0
		for w := 0; w < wordsPerLine; w++ {
			if g.rng.Float64() < p {
				g.mutateWord(ls.data, w)
				touched++
			}
		}
		if touched == 0 {
			g.mutateWord(ls.data, g.rng.Intn(wordsPerLine))
		}
	} else {
		fp := g.footprintOf(ls)
		n := 1 + g.poisson(g.prof.WordsPerWrite-1)
		for i := 0; i < n; i++ {
			var w int
			if g.rng.Float64() < g.prof.Drift {
				w = g.rng.Intn(wordsPerLine)
			} else {
				w = fp[g.rng.Intn(len(fp))]
			}
			g.mutateWord(ls.data, w)
		}
	}

	g.writebacks++
	out := make([]byte, LineBytes)
	copy(out, ls.data)
	return line, out
}

// Next implements trace.Source: an endless interleaved stream of read
// misses and writebacks at the profile's MPKI/WBPKI ratio, with
// exponentially distributed instruction gaps. Callers decide when to stop.
func (g *Generator) Next() (trace.Event, error) {
	cpu := g.nextCPU
	g.nextCPU = (g.nextCPU + 1) % g.cfg.CPUs

	// Mean instructions between this CPU's memory events.
	meanGap := 1000 / (g.prof.MPKI + g.prof.WBPKI)
	gap := uint32(g.rng.ExpFloat64() * meanGap)

	if g.rng.Float64() < g.eventProb {
		g.reads++
		// Read misses target a disjoint region above the writeback
		// lines (streaming loads dominate L4 read misses).
		line := uint64(len(g.lines)) + g.pickLine(cpu)
		return trace.Event{Kind: trace.Read, Line: line, CPU: uint8(cpu), Gap: gap}, nil
	}
	line, data := g.NextWriteback(cpu)
	return trace.Event{Kind: trace.Writeback, Line: line, CPU: uint8(cpu), Gap: gap, Data: data}, nil
}

var _ trace.Source = (*Generator)(nil)
