package workload

import (
	"math"
	"testing"

	"deuce/internal/bitutil"
	"deuce/internal/trace"
)

func TestProfilesValid(t *testing.T) {
	ps := SPEC2006()
	if len(ps) != 12 {
		t.Fatalf("got %d profiles, want 12 (Table 2)", len(ps))
	}
	for _, p := range ps {
		if err := p.validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	// Table 2 ordering: WBPKI descending.
	for i := 1; i < len(ps); i++ {
		if ps[i].WBPKI > ps[i-1].WBPKI {
			t.Errorf("profiles out of WBPKI order at %s", ps[i].Name)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("mcf")
	if err != nil || p.Name != "mcf" {
		t.Errorf("ByName(mcf) = %+v, %v", p.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
	if len(Names()) != 12 {
		t.Errorf("Names() has %d entries", len(Names()))
	}
}

func TestValidationRejectsBadProfiles(t *testing.T) {
	good, _ := ByName("mcf")
	cases := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.FootprintWords = 0 },
		func(p *Profile) { p.FootprintWords = 33 },
		func(p *Profile) { p.WordsPerWrite = 0 },
		func(p *Profile) { p.Drift = 1.5 },
		func(p *Profile) { p.HotFrac = 0 },
		func(p *Profile) { p.WBPKI = 0 },
	}
	for i, mutate := range cases {
		p := good
		mutate(&p)
		if _, err := New(p, Config{}); err == nil {
			t.Errorf("case %d: bad profile accepted", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	p, _ := ByName("mcf")
	g1 := MustNew(p, Config{Seed: 7})
	g2 := MustNew(p, Config{Seed: 7})
	for i := 0; i < 200; i++ {
		l1, d1 := g1.NextWriteback(0)
		l2, d2 := g2.NextWriteback(0)
		if l1 != l2 || !bitutil.Equal(d1, d2) {
			t.Fatalf("streams diverged at writeback %d", i)
		}
	}
	// Different seed: different stream.
	g3 := MustNew(p, Config{Seed: 8})
	same := 0
	for i := 0; i < 50; i++ {
		l1, _ := g1.NextWriteback(0)
		l3, _ := g3.NextWriteback(0)
		if l1 == l3 {
			same++
		}
	}
	if same == 50 {
		t.Error("different seeds produced identical line sequences")
	}
}

// Every writeback must actually change the line relative to the previous
// content of that line (cache writebacks of dirty lines).
func TestWritebacksChangeData(t *testing.T) {
	p, _ := ByName("omnetpp")
	g := MustNew(p, Config{Seed: 1, LinesPerCPU: 64})
	prev := make(map[uint64][]byte)
	for i := 0; i < 2000; i++ {
		line, data := g.NextWriteback(0)
		if old, ok := prev[line]; ok {
			if bitutil.Equal(old, data) {
				t.Fatalf("writeback %d to line %d did not change the line", i, line)
			}
		}
		prev[line] = data
	}
}

// The mean modified-bit fraction (DCW cost) must sit in the benchmark's
// calibrated band, and the per-benchmark densities must produce the paper's
// global ~12% average.
func TestWriteDensityCalibration(t *testing.T) {
	var overall float64
	ps := SPEC2006()
	for _, p := range ps {
		g := MustNew(p, Config{Seed: 3, LinesPerCPU: 512})
		prev := make(map[uint64][]byte)
		var flips, writes int
		for i := 0; i < 8000; i++ {
			line, data := g.NextWriteback(0)
			if old, ok := prev[line]; ok {
				flips += bitutil.Hamming(old, data)
				writes++
			}
			prev[line] = data
		}
		frac := float64(flips) / float64(writes*512)
		overall += frac
		if frac < 0.005 || frac > 0.45 {
			t.Errorf("%s: DCW flip fraction %.3f outside plausible band", p.Name, frac)
		}
		// Dense benchmarks must be much denser than sparse ones.
		if p.Dense && frac < 0.15 {
			t.Errorf("%s: dense benchmark only %.3f", p.Name, frac)
		}
		if !p.Dense && frac > 0.25 {
			t.Errorf("%s: sparse benchmark at %.3f", p.Name, frac)
		}
	}
	avg := overall / float64(len(ps))
	// Paper: 12.2% average for DCW on unencrypted memory (Figure 5).
	if math.Abs(avg-0.122) > 0.04 {
		t.Errorf("average DCW fraction = %.3f, want 0.122±0.04", avg)
	}
}

// libq's counter model must concentrate flips on low bit positions of its
// footprint words (the 27x skew driver of Figure 12).
func TestCounterModelBitSkew(t *testing.T) {
	p, _ := ByName("libq")
	g := MustNew(p, Config{Seed: 5, LinesPerCPU: 128})
	pos := make([]uint64, 512)
	prev := make(map[uint64][]byte)
	var writes uint64
	for i := 0; i < 20000; i++ {
		line, data := g.NextWriteback(0)
		if old, ok := prev[line]; ok {
			for b := 0; b < 512; b++ {
				if bitutil.GetBit(old, b) != bitutil.GetBit(data, b) {
					pos[b]++
				}
			}
			writes++
		}
		prev[line] = data
	}
	var max, sum uint64
	for _, c := range pos {
		sum += c
		if c > max {
			max = c
		}
	}
	skew := float64(max) / (float64(sum) / 512)
	if skew < 10 {
		t.Errorf("libq bit-position skew = %.1f, want >10 (paper: 27x)", skew)
	}
}

func TestEventStreamRates(t *testing.T) {
	p, _ := ByName("libq") // MPKI 22.9, WBPKI 9.78
	g := MustNew(p, Config{Seed: 2, CPUs: 4, LinesPerCPU: 256})
	var reads, wbs int
	for i := 0; i < 20000; i++ {
		e, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		switch e.Kind {
		case trace.Read:
			reads++
			if e.Data != nil {
				t.Fatal("read event carries data")
			}
		case trace.Writeback:
			wbs++
			if len(e.Data) != 64 {
				t.Fatalf("writeback payload %d bytes", len(e.Data))
			}
		}
		if e.CPU > 3 {
			t.Fatalf("event on cpu %d", e.CPU)
		}
	}
	ratio := float64(reads) / float64(wbs)
	want := 22.9 / 9.78
	if math.Abs(ratio-want)/want > 0.1 {
		t.Errorf("read/writeback ratio = %.2f, want %.2f", ratio, want)
	}
	w, r := g.Stats()
	if int(w) != wbs || int(r) != reads {
		t.Error("Stats disagrees with observed events")
	}
}

// Read misses must never alias the writeback region (they model streaming
// loads, not RMW traffic).
func TestReadRegionDisjoint(t *testing.T) {
	p, _ := ByName("astar")
	g := MustNew(p, Config{Seed: 9, LinesPerCPU: 100})
	for i := 0; i < 5000; i++ {
		e, _ := g.Next()
		if e.Kind == trace.Read && e.Line < uint64(g.Lines()) {
			t.Fatalf("read miss inside writeback region: line %d", e.Line)
		}
		if e.Kind == trace.Writeback && e.Line >= uint64(g.Lines()) {
			t.Fatalf("writeback outside its region: line %d", e.Line)
		}
	}
}

// CPUs write disjoint line regions in rate mode.
func TestCPURegionsDisjoint(t *testing.T) {
	p, _ := ByName("mcf")
	g := MustNew(p, Config{Seed: 4, CPUs: 2, LinesPerCPU: 100})
	for i := 0; i < 1000; i++ {
		line, _ := g.NextWriteback(0)
		if line >= 100 {
			t.Fatalf("cpu0 wrote line %d", line)
		}
		line, _ = g.NextWriteback(1)
		if line < 100 || line >= 200 {
			t.Fatalf("cpu1 wrote line %d", line)
		}
	}
}

func TestValueModelString(t *testing.T) {
	if ValueRandom.String() != "random" || ValueCounter.String() != "counter" || ValueFloat.String() != "float" {
		t.Error("ValueModel.String mismatch")
	}
}

func BenchmarkNextWriteback(b *testing.B) {
	p, _ := ByName("mcf")
	g := MustNew(p, Config{Seed: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.NextWriteback(0)
	}
}
