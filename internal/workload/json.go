package workload

import (
	"encoding/json"
	"fmt"
	"io"
)

// profileJSON is the serialized form of Profile. All fields are optional
// except name; zero-valued write-shape fields fall back to a conservative
// generic profile so a user can start from {"name": "mine", "wbpki": 2}.
type profileJSON struct {
	Name           string  `json:"name"`
	MPKI           float64 `json:"mpki"`
	WBPKI          float64 `json:"wbpki"`
	FootprintWords int     `json:"footprint_words"`
	WordsPerWrite  float64 `json:"words_per_write"`
	Dense          bool    `json:"dense"`
	Drift          float64 `json:"drift"`
	FootprintCorr  float64 `json:"footprint_corr"`
	BitDensity     float64 `json:"bit_density"`
	Model          string  `json:"model"` // "random", "counter", "float"
	HotFrac        float64 `json:"hot_frac"`
	HotWeight      float64 `json:"hot_weight"`
}

// ParseProfile reads a user-defined benchmark profile from JSON, applying
// generic defaults for omitted write-shape parameters. This is the hook
// for simulating proprietary workloads without touching the built-ins:
// characterize the writeback stream, encode it as JSON, point deucesim at
// it.
func ParseProfile(r io.Reader) (Profile, error) {
	var pj profileJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&pj); err != nil {
		return Profile{}, fmt.Errorf("workload: parsing profile: %w", err)
	}
	p := Profile{
		Name:           pj.Name,
		MPKI:           pj.MPKI,
		WBPKI:          pj.WBPKI,
		FootprintWords: pj.FootprintWords,
		WordsPerWrite:  pj.WordsPerWrite,
		Dense:          pj.Dense,
		Drift:          pj.Drift,
		FootprintCorr:  pj.FootprintCorr,
		BitDensity:     pj.BitDensity,
		HotFrac:        pj.HotFrac,
		HotWeight:      pj.HotWeight,
	}
	switch pj.Model {
	case "", "random":
		p.Model = ValueRandom
	case "counter":
		p.Model = ValueCounter
	case "float":
		p.Model = ValueFloat
	default:
		return Profile{}, fmt.Errorf("workload: unknown value model %q", pj.Model)
	}
	// Generic defaults: a moderately sparse pointer-churn workload.
	if p.MPKI == 0 {
		p.MPKI = 10
	}
	if p.WBPKI == 0 {
		p.WBPKI = 4
	}
	if p.FootprintWords == 0 {
		p.FootprintWords = 8
	}
	if p.WordsPerWrite == 0 {
		p.WordsPerWrite = 3
	}
	if p.FootprintCorr == 0 {
		p.FootprintCorr = 0.8
	}
	if p.BitDensity == 0 {
		p.BitDensity = 0.5
	}
	if p.HotFrac == 0 {
		p.HotFrac = 0.3
	}
	if p.HotWeight == 0 {
		p.HotWeight = 0.75
	}
	if err := p.validate(); err != nil {
		return Profile{}, err
	}
	return p, nil
}

// MarshalJSON round-trips a Profile into the same schema ParseProfile
// reads, so built-in profiles can serve as templates
// (`deucesim -dumpprofile mcf`).
func (p Profile) MarshalJSON() ([]byte, error) {
	return json.Marshal(profileJSON{
		Name:           p.Name,
		MPKI:           p.MPKI,
		WBPKI:          p.WBPKI,
		FootprintWords: p.FootprintWords,
		WordsPerWrite:  p.WordsPerWrite,
		Dense:          p.Dense,
		Drift:          p.Drift,
		FootprintCorr:  p.FootprintCorr,
		BitDensity:     p.BitDensity,
		Model:          p.Model.String(),
		HotFrac:        p.HotFrac,
		HotWeight:      p.HotWeight,
	})
}
