package workload

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestParseProfileMinimal(t *testing.T) {
	p, err := ParseProfile(strings.NewReader(`{"name":"mine","wbpki":2}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "mine" || p.WBPKI != 2 {
		t.Errorf("parsed %+v", p)
	}
	// Defaults fill everything else to a valid profile.
	if err := p.validate(); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
	// And it generates.
	g := MustNew(p, Config{Seed: 1, LinesPerCPU: 32})
	line, data := g.NextWriteback(0)
	if line >= 32 || len(data) != 64 {
		t.Error("generator from parsed profile misbehaves")
	}
}

func TestParseProfileModels(t *testing.T) {
	for name, want := range map[string]ValueModel{
		"random": ValueRandom, "counter": ValueCounter, "float": ValueFloat, "": ValueRandom,
	} {
		js := `{"name":"x","wbpki":1,"model":"` + name + `"}`
		if name == "" {
			js = `{"name":"x","wbpki":1}`
		}
		p, err := ParseProfile(strings.NewReader(js))
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if p.Model != want {
			t.Errorf("%q: model = %v, want %v", name, p.Model, want)
		}
	}
	if _, err := ParseProfile(strings.NewReader(`{"name":"x","wbpki":1,"model":"nope"}`)); err == nil {
		t.Error("bad model accepted")
	}
}

func TestParseProfileRejectsGarbage(t *testing.T) {
	cases := []string{
		`{`,
		`{"name":"x","wbpki":1,"unknown_field":1}`,
		`{"wbpki":1}`,                                 // no name
		`{"name":"x","wbpki":1,"drift":2}`,            // invalid probability
		`{"name":"x","wbpki":1,"footprint_words":40}`, // > 32
	}
	for _, c := range cases {
		if _, err := ParseProfile(strings.NewReader(c)); err == nil {
			t.Errorf("accepted %s", c)
		}
	}
}

func TestProfileJSONRoundTrip(t *testing.T) {
	orig, _ := ByName("libq")
	blob, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseProfile(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name || back.Model != orig.Model ||
		back.FootprintWords != orig.FootprintWords || back.WBPKI != orig.WBPKI {
		t.Errorf("round trip lost fields: %+v vs %+v", back, orig)
	}
}
