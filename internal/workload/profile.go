// Package workload synthesizes memory writeback streams whose statistics
// match the SPEC CPU2006 benchmarks of the paper's Table 2. The paper's
// results are all functions of a handful of writeback-stream properties:
//
//   - how many 2-byte words a writeback modifies (write density),
//   - how stable the set of modified words is across writes to the same
//     line (footprint stability — what DEUCE's epoch bits exploit),
//   - how values change inside a modified word (counters flip low bits
//     every time, floats churn mantissas, pointers look random),
//   - how correlated footprints are across lines (arrays of structs put
//     the hot fields at the same offsets in every line — the source of
//     Figure 12's 27x per-bit-position skew), and
//   - how skewed line reuse is (hot working sets).
//
// Each Profile encodes those properties for one benchmark; Generator turns
// a profile into a deterministic stream of writebacks and read misses.
//
// Concurrency: a Generator is unlocked single-owner state (it advances a
// deterministic clonerand stream). Cached warm generators are never
// advanced after construction — consumers take Fork, which hands each
// caller an independent generator parked at the same stream position.
package workload

import "fmt"

// ValueModel describes how the payload of a modified word evolves.
type ValueModel int

// Value models.
const (
	// ValueRandom XORs a random mask into the word (pointers, hashes,
	// compressed data). Bit flips are uniform within the word.
	ValueRandom ValueModel = iota
	// ValueCounter increments the word as an integer (loop counters,
	// indices): the LSB flips on every update, bit k with probability
	// 2^-k. This is what gives libquantum its extreme bit-position skew.
	ValueCounter
	// ValueFloat churns the low mantissa bits of a float-like word:
	// flip probability decays linearly with bit position.
	ValueFloat
)

// String implements fmt.Stringer.
func (m ValueModel) String() string {
	switch m {
	case ValueRandom:
		return "random"
	case ValueCounter:
		return "counter"
	case ValueFloat:
		return "float"
	default:
		return fmt.Sprintf("ValueModel(%d)", int(m))
	}
}

// Profile is the generative model of one benchmark's memory behaviour.
type Profile struct {
	// Name is the benchmark name as listed in Table 2.
	Name string
	// MPKI is L4 read misses per kilo-instruction (Table 2).
	MPKI float64
	// WBPKI is L4 writebacks per kilo-instruction (Table 2).
	WBPKI float64

	// FootprintWords is the size of a line's stable modified-word
	// footprint, in 2-byte words (out of 32).
	FootprintWords int
	// WordsPerWrite is the mean number of words modified per writeback.
	WordsPerWrite float64
	// Dense marks benchmarks (Gems, soplex) that rewrite most of the
	// line on every writeback; WordsPerWrite then acts as a Binomial
	// mean over all 32 words.
	Dense bool
	// Drift is the probability that a modified word falls outside the
	// stable footprint (transient writes that inflate DEUCE's epoch
	// footprint).
	Drift float64
	// FootprintCorr is the probability that a footprint slot uses the
	// benchmark-wide base offsets rather than a per-line random
	// position (struct-layout correlation across lines).
	FootprintCorr float64
	// BitDensity is the per-bit flip probability inside a modified word
	// for the Random and Float models.
	BitDensity float64
	// Model selects how modified words change value.
	Model ValueModel
	// HotFrac is the fraction of lines forming the hot set.
	HotFrac float64
	// HotWeight is the fraction of traffic going to the hot set.
	HotWeight float64
}

// validate rejects meaningless profiles early.
func (p Profile) validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile without a name")
	}
	if p.FootprintWords < 1 || p.FootprintWords > 32 {
		return fmt.Errorf("workload %s: FootprintWords %d out of [1,32]", p.Name, p.FootprintWords)
	}
	if p.WordsPerWrite < 0.5 || p.WordsPerWrite > 32 {
		return fmt.Errorf("workload %s: WordsPerWrite %v out of [0.5,32]", p.Name, p.WordsPerWrite)
	}
	if p.Drift < 0 || p.Drift > 1 || p.FootprintCorr < 0 || p.FootprintCorr > 1 ||
		p.BitDensity < 0 || p.BitDensity > 1 || p.HotFrac <= 0 || p.HotFrac > 1 ||
		p.HotWeight < 0 || p.HotWeight > 1 {
		return fmt.Errorf("workload %s: probability parameter out of range", p.Name)
	}
	if p.MPKI < 0 || p.WBPKI <= 0 {
		return fmt.Errorf("workload %s: non-positive rates", p.Name)
	}
	return nil
}

// SPEC2006 returns the twelve write-intensive SPEC CPU2006 profiles of
// Table 2, in the paper's order (by WBPKI, descending). The write-shape
// parameters are calibrated so that the simulated streams reproduce the
// paper's measured flip statistics (see EXPERIMENTS.md for the
// calibration record).
func SPEC2006() []Profile {
	return []Profile{
		{
			Name: "libq", MPKI: 22.9, WBPKI: 9.78,
			// Quantum register simulation: sweeps of state-vector
			// updates touching the same one or two fields per
			// object, counter-like. Extreme footprint stability
			// and cross-line correlation (27x skew in Fig. 12).
			FootprintWords: 5, WordsPerWrite: 2.5, Drift: 0.04,
			FootprintCorr: 1.0, BitDensity: 0.5, Model: ValueCounter,
			HotFrac: 0.5, HotWeight: 0.6,
		},
		{
			Name: "mcf", MPKI: 16.2, WBPKI: 8.78,
			// Network-simplex pointer updates: few words, random
			// pointer values, well-correlated node layout.
			FootprintWords: 5, WordsPerWrite: 3.4, Drift: 0.03,
			FootprintCorr: 0.8, BitDensity: 0.58, Model: ValueRandom,
			HotFrac: 0.3, HotWeight: 0.7,
		},
		{
			Name: "lbm", MPKI: 14.6, WBPKI: 7.25,
			// Lattice-Boltzmann: streaming stencil over doubles,
			// most of the cell rewritten with mantissa churn.
			FootprintWords: 15, WordsPerWrite: 11, Drift: 0.03,
			FootprintCorr: 0.9, BitDensity: 0.55, Model: ValueFloat,
			HotFrac: 0.9, HotWeight: 0.9,
		},
		{
			Name: "Gems", MPKI: 14.4, WBPKI: 7.14,
			// GemsFDTD: dense field updates — nearly the whole
			// line changes every writeback, which is why DEUCE
			// alone loses to FNW here (Fig. 10).
			FootprintWords: 32, WordsPerWrite: 30, Dense: true,
			Drift: 0.0, FootprintCorr: 1.0, BitDensity: 0.55,
			Model: ValueRandom, HotFrac: 0.9, HotWeight: 0.9,
		},
		{
			Name: "milc", MPKI: 19.6, WBPKI: 6.80,
			// SU(3) matrix elements: double-precision churn over
			// a large part of the line.
			FootprintWords: 15, WordsPerWrite: 13, Drift: 0.03,
			FootprintCorr: 0.9, BitDensity: 0.52, Model: ValueFloat,
			HotFrac: 0.8, HotWeight: 0.85,
		},
		{
			Name: "omnetpp", MPKI: 10.8, WBPKI: 4.71,
			// Discrete-event queues: a couple of pointer/size
			// fields per object, very stable offsets.
			FootprintWords: 4, WordsPerWrite: 2.7, Drift: 0.02,
			FootprintCorr: 0.9, BitDensity: 0.55, Model: ValueRandom,
			HotFrac: 0.2, HotWeight: 0.8,
		},
		{
			Name: "leslie3d", MPKI: 12.8, WBPKI: 4.38,
			// Fluid dynamics: float stencils over a moderate
			// slice of the line.
			FootprintWords: 14, WordsPerWrite: 10, Drift: 0.03,
			FootprintCorr: 0.85, BitDensity: 0.55, Model: ValueFloat,
			HotFrac: 0.9, HotWeight: 0.9,
		},
		{
			Name: "soplex", MPKI: 25.5, WBPKI: 3.97,
			// Simplex LP: dense row updates with near-random
			// coefficient changes — DEUCE's other loss (Fig. 10).
			FootprintWords: 32, WordsPerWrite: 30, Dense: true,
			Drift: 0.0, FootprintCorr: 1.0, BitDensity: 0.55,
			Model: ValueRandom, HotFrac: 0.7, HotWeight: 0.85,
		},
		{
			Name: "zeusmp", MPKI: 4.65, WBPKI: 1.97,
			FootprintWords: 12, WordsPerWrite: 7.8, Drift: 0.03,
			FootprintCorr: 0.85, BitDensity: 0.55, Model: ValueFloat,
			HotFrac: 0.8, HotWeight: 0.85,
		},
		{
			Name: "wrf", MPKI: 3.85, WBPKI: 1.67,
			// Weather model: float churn with a drifting footprint
			// (the benchmark whose flips grow with epoch length in
			// Fig. 9).
			FootprintWords: 13, WordsPerWrite: 7.8, Drift: 0.12,
			FootprintCorr: 0.85, BitDensity: 0.55, Model: ValueFloat,
			HotFrac: 0.7, HotWeight: 0.8,
		},
		{
			Name: "xalanc", MPKI: 1.85, WBPKI: 1.61,
			// XSLT: strings and DOM pointers, moderately sparse.
			FootprintWords: 9, WordsPerWrite: 5.2, Drift: 0.03,
			FootprintCorr: 0.7, BitDensity: 0.58, Model: ValueRandom,
			HotFrac: 0.3, HotWeight: 0.75,
		},
		{
			Name: "astar", MPKI: 1.84, WBPKI: 1.29,
			// Pathfinding: node cost/parent updates.
			FootprintWords: 8, WordsPerWrite: 4.5, Drift: 0.03,
			FootprintCorr: 0.75, BitDensity: 0.55, Model: ValueRandom,
			HotFrac: 0.3, HotWeight: 0.75,
		},
	}
}

// ByName returns the named built-in profile.
func ByName(name string) (Profile, error) {
	for _, p := range SPEC2006() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown profile %q", name)
}

// Names returns the built-in profile names in Table 2 order.
func Names() []string {
	ps := SPEC2006()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}
