package deuce

import (
	"bytes"
	"io"
	"math/rand"
	"path/filepath"
	"testing"
)

// traceResult is everything the restart differential suite compares:
// final line contents and the exact integer activity counters. Averages
// are derived fields and MetadataBitsPerLine is static, so the integers
// are the complete behavioral fingerprint.
type traceResult struct {
	contents   [][]byte
	writes     uint64
	reads      uint64
	bitFlips   uint64
	writeSlots uint64
}

// addStats folds one segment's Stats into the result (the restart variant
// accumulates two segments — device statistics are volatile controller
// state and reset across a restart).
func (r *traceResult) addStats(s Stats) {
	r.writes += s.Writes
	r.reads += s.Reads
	r.bitFlips += s.BitFlips
	r.writeSlots += s.WriteSlots
}

const (
	diffLines     = 64
	diffWrites    = 500
	diffRestartAt = diffWrites / 2
)

// runTrace drives a deterministic write/read trace against m, invoking
// midpoint at write diffRestartAt (which may replace m — it returns the
// memory to continue on). Every variant's midpoint calls Persist, so
// i-NVMM's power-down encryption (a Persist side effect that changes both
// contents and flip counts) applies identically everywhere; without that,
// only the restart variant would pay it and bit-identity could not hold.
func runTrace(t *testing.T, m *Memory, midpoint func(m *Memory, res *traceResult) *Memory) traceResult {
	t.Helper()
	var res traceResult
	rng := rand.New(rand.NewSource(99))
	buf := make([]byte, 64)
	scratch := make([]byte, 64)
	for i := 0; i < diffWrites; i++ {
		if i == diffRestartAt {
			m = midpoint(m, &res)
		}
		l := uint64(rng.Intn(diffLines))
		rng.Read(buf)
		m.Write(l, buf)
		if i%3 == 0 {
			m.ReadInto(uint64(rng.Intn(diffLines)), scratch)
		}
	}
	res.addStats(m.Stats())
	res.contents = make([][]byte, diffLines)
	for l := 0; l < diffLines; l++ {
		res.contents[l] = make([]byte, 64)
		m.ReadInto(uint64(l), res.contents[l])
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	return res
}

// persistMidpoint is the midpoint for non-restart variants: snapshot to
// io.Discard so Persist's side effects (i-NVMM power-down) land, keep
// running on the same memory.
func persistMidpoint(t *testing.T) func(m *Memory, _ *traceResult) *Memory {
	return func(m *Memory, _ *traceResult) *Memory {
		t.Helper()
		if err := m.Persist(io.Discard); err != nil {
			t.Fatal(err)
		}
		return m
	}
}

// TestRestartDifferential pins the backend layer's central promise: the
// same trace produces bit-identical contents and activity counters on the
// in-memory backend, the file backend, the sharded-dir backend, and a file
// backend that is synced, closed, reopened and restored in the middle of
// the trace. Every scheme must hold this — a divergence means a backend
// leaks into scheme behavior or a restart loses state.
func TestRestartDifferential(t *testing.T) {
	for _, s := range Schemes() {
		s := s
		t.Run(string(s), func(t *testing.T) {
			t.Parallel()
			base := Options{Lines: diffLines, Scheme: s}

			ref := runTrace(t, MustNew(base), persistMidpoint(t))

			variants := []struct {
				name string
				run  func(t *testing.T) traceResult
			}{
				{"file", func(t *testing.T) traceResult {
					opts := base
					opts.Backend, opts.Dir = FileBackend, t.TempDir()
					return runTrace(t, MustNew(opts), persistMidpoint(t))
				}},
				{"dir", func(t *testing.T) traceResult {
					opts := base
					opts.Backend, opts.Dir, opts.DirShards = DirBackend, t.TempDir(), 4
					return runTrace(t, MustNew(opts), persistMidpoint(t))
				}},
				{"restart", func(t *testing.T) traceResult {
					opts := base
					opts.Backend, opts.Dir = FileBackend, t.TempDir()
					snap := filepath.Join(opts.Dir, "ctl.snap")
					return runTrace(t, MustNew(opts), func(m *Memory, res *traceResult) *Memory {
						// Full power cycle mid-trace: controller snapshot,
						// durable sync, close, reopen, restore.
						if err := m.PersistToFile(snap); err != nil {
							t.Fatal(err)
						}
						if err := m.Sync(); err != nil {
							t.Fatal(err)
						}
						res.addStats(m.Stats())
						if err := m.Close(); err != nil {
							t.Fatal(err)
						}
						m2, err := New(opts)
						if err != nil {
							t.Fatal(err)
						}
						if err := m2.RestoreFromFile(snap); err != nil {
							t.Fatal(err)
						}
						return m2
					})
				}},
			}
			for _, v := range variants {
				got := v.run(t)
				if got.writes != ref.writes || got.reads != ref.reads ||
					got.bitFlips != ref.bitFlips || got.writeSlots != ref.writeSlots {
					t.Errorf("%s: counters diverge: got writes=%d reads=%d flips=%d slots=%d, ref writes=%d reads=%d flips=%d slots=%d",
						v.name, got.writes, got.reads, got.bitFlips, got.writeSlots,
						ref.writes, ref.reads, ref.bitFlips, ref.writeSlots)
				}
				for l := range ref.contents {
					if !bytes.Equal(got.contents[l], ref.contents[l]) {
						t.Errorf("%s: line %d contents diverge from in-memory reference", v.name, l)
						break
					}
				}
			}
		})
	}
}
